//! Temporal-blocking schedules as a trait.
//!
//! PR 4 factored the 3.5-D pipeline into a geometry/storage engine
//! ([`super::engine35`]) that is agnostic to *what* a level computes
//! (the [`super::engine35::PlaneKernel`] trait). This module factors out
//! the remaining hardcode: *when* each level computes which plane. A
//! [`Schedule`] owns the lag/plane/ring/barrier arithmetic and the
//! outer-step iteration; the engine asks it which planes each temporal
//! level advances at each barrier-separated outer step and how many ring
//! slots keep concurrently-live planes from colliding.
//!
//! Three schedules ship:
//!
//! * [`Lag35`] (`"lag35d"`) — the paper's 3.5-D lag schedule: level `t`
//!   trails the stream head by `2R·(t-1)` planes so each level's reads
//!   land `R` planes behind the previous level's freshest write
//!   (Nguyen et al., SC 2010).
//! * [`WavefrontShared`] (`"wavefront"`) — the shared-cache wavefront of
//!   Wittmann/Hager/Wellein: the minimal lag `(R+1)·(t-1)` that still
//!   separates each level's `z±R` read window from its producer's
//!   same-step write plane. Identical to the lag schedule at `R = 1`;
//!   for `R ≥ 2` the pipeline is shorter (less warmup/drain) and the
//!   rings stay at `2R+2` slots where the lag schedule needs `3R+1`.
//! * [`WavefrontDiamond`] (`"diamond"`) — a multi-plane wavefront in the
//!   spirit of Malas et al.'s wavefront-diamond blocking: each level
//!   advances a span of [`DIAMOND_SPAN`] planes per outer step, trading
//!   ring footprint (`2·(B+R)` slots) for a `B×` reduction in barrier
//!   count — the win when synchronization, not bandwidth, bounds the
//!   sweep.
//!
//! Every schedule runs every `PlaneKernel` (stencil and LBM) unchanged:
//! kernels read ring `t-2` planes `z±R` and write ring `t-1` plane `z`,
//! and never see the lag. Race-freedom of each schedule's arithmetic is
//! re-proved per schedule by the symbolic checker in
//! `threefive-analyze`, which binds these same methods (a mutant lag,
//! ring, or barrier count is flagged, not silently absorbed).

use std::fmt;
use std::ops::Range;
use std::str::FromStr;

use super::engine35;

/// Planes each [`WavefrontDiamond`] level advances per outer step.
///
/// Four planes amortize the barrier 4× while keeping the ring footprint
/// (`2·(4+R)` planes per ring) within the span of fast storage the
/// planner already budgets for the lag schedule's working set.
pub const DIAMOND_SPAN: usize = 4;

/// The temporal-blocking schedules the engine can run.
///
/// This is the first-class axis threaded through the planner, the
/// tuner's search space (`TUNE.json` schema v2), `run`/`bench`/`serve`
/// plan surfaces, and BENCH/TRACE provenance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// The paper's 3.5-D lag schedule (`lag = 2R·(t-1)`).
    #[default]
    Lag35d,
    /// Shared-cache wavefront (`lag = (R+1)·(t-1)`).
    Wavefront,
    /// Multi-plane wavefront-diamond (`span = 4`, `lag = (4+R)·(t-1)`).
    Diamond,
}

impl ScheduleKind {
    /// Every schedule, in canonical (paper-first) order.
    pub const ALL: [ScheduleKind; 3] = [
        ScheduleKind::Lag35d,
        ScheduleKind::Wavefront,
        ScheduleKind::Diamond,
    ];

    /// Stable identifier used in CLI flags, JSON schemas and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ScheduleKind::Lag35d => "lag35d",
            ScheduleKind::Wavefront => "wavefront",
            ScheduleKind::Diamond => "diamond",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lag35d" => Some(ScheduleKind::Lag35d),
            "wavefront" => Some(ScheduleKind::Wavefront),
            "diamond" => Some(ScheduleKind::Diamond),
            _ => None,
        }
    }

    /// The schedule's arithmetic, as a shared static.
    pub fn schedule(self) -> &'static dyn Schedule {
        match self {
            ScheduleKind::Lag35d => &LAG35D,
            ScheduleKind::Wavefront => &WAVEFRONT,
            ScheduleKind::Diamond => &DIAMOND,
        }
    }
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ScheduleKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScheduleKind::parse(s)
            .ok_or_else(|| format!("unknown schedule '{s}' (expected lag35d, wavefront, diamond)"))
    }
}

/// The temporal-blocking schedule contract.
///
/// A schedule positions `c = dim_T` temporal levels along the Z stream.
/// At outer step `s` (barrier-separated), level `t ∈ 1..=c` advances the
/// planes [`Self::planes_for_level`] — a contiguous window derived from
/// the level's lag and the schedule's per-step span. The engine sizes
/// each ring at [`Self::ring_slots`] planes and runs
/// [`Self::outer_steps`] steps so the commit level drains plane
/// `nz - 1`.
///
/// The default `outer_steps`/`planes_for_level` implementations derive
/// the iteration entirely from [`Self::level_lag`] and [`Self::span`]:
/// level `t` processes plane `z` at the unique step
/// `s = ⌊(z + lag(t)) / span⌋`.
pub trait Schedule: Sync {
    /// Which schedule this is (for provenance and dispatch).
    fn kind(&self) -> ScheduleKind;

    /// How many planes level `t` (1-based) trails the stream head by.
    fn level_lag(&self, r: usize, t: usize) -> usize;

    /// Planes each level advances per outer step (barriers per sweep
    /// scale as `1/span`).
    fn span(&self) -> usize {
        1
    }

    /// Ring capacity in planes: enough to keep every concurrently-live
    /// plane of a ring in a distinct slot.
    fn ring_slots(&self, r: usize) -> usize;

    /// Outer steps for `c` levels to stream `nz` planes (including
    /// pipeline warmup and drain).
    fn outer_steps(&self, nz: usize, r: usize, c: usize) -> usize {
        (nz + self.level_lag(r, c)).div_ceil(self.span())
    }

    /// The planes level `t` advances at outer step `s`, clipped to the
    /// grid (empty during this level's warmup/drain phases).
    fn planes_for_level(&self, s: usize, r: usize, t: usize, nz: usize) -> Range<usize> {
        let span = self.span();
        let lag = self.level_lag(r, t);
        let pos = span * s;
        let hi = (pos + span).saturating_sub(lag).min(nz);
        let lo = pos.saturating_sub(lag).min(hi);
        lo..hi
    }
}

/// The paper's 3.5-D lag schedule (shared static: [`LAG35D`]).
///
/// Delegates to the free functions in [`engine35`] so the symbolic
/// checker keeps binding the engine's own arithmetic — there is exactly
/// one definition of the lag-schedule math in the tree.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lag35;

/// Shared static for [`Lag35`].
pub static LAG35D: Lag35 = Lag35;

impl Schedule for Lag35 {
    fn kind(&self) -> ScheduleKind {
        ScheduleKind::Lag35d
    }

    fn level_lag(&self, r: usize, t: usize) -> usize {
        engine35::level_lag(r, t)
    }

    fn ring_slots(&self, r: usize) -> usize {
        engine35::ring_slots(r)
    }
}

/// Shared-cache wavefront schedule (shared static: [`WAVEFRONT`]).
///
/// Level `t` trails by `(R+1)·(t-1)` planes — the minimal lag keeping
/// level `t`'s read window `z_t ± R` strictly below its producer's
/// same-step write plane `z_t + R + 1`. Rings need `2R+2` slots: a
/// plane's slot is recycled `2R+2` planes later, one step after its
/// last `z+R` reader retires it.
#[derive(Clone, Copy, Debug, Default)]
pub struct WavefrontShared;

/// Shared static for [`WavefrontShared`].
pub static WAVEFRONT: WavefrontShared = WavefrontShared;

impl Schedule for WavefrontShared {
    fn kind(&self) -> ScheduleKind {
        ScheduleKind::Wavefront
    }

    fn level_lag(&self, r: usize, t: usize) -> usize {
        (r + 1) * (t - 1)
    }

    fn ring_slots(&self, r: usize) -> usize {
        2 * r + 2
    }
}

/// Multi-plane wavefront-diamond schedule (shared static: [`DIAMOND`]).
///
/// Each level advances `B = 4` planes per step with lag `(B+R)·(t-1)`.
/// Per step, level `t` writes planes `[pos - lag(t), pos - lag(t) + B)`
/// while its consumer reads planes at most `pos - lag(t) - 1` — the
/// extra `R` in the lag absorbs the consumer's `+R` read reach. Rings
/// need `2·(B+R)` slots: the widest same-step write-to-live-read
/// distance is `2B + 2R - 1`.
#[derive(Clone, Copy, Debug, Default)]
pub struct WavefrontDiamond;

/// Shared static for [`WavefrontDiamond`].
pub static DIAMOND: WavefrontDiamond = WavefrontDiamond;

impl Schedule for WavefrontDiamond {
    fn kind(&self) -> ScheduleKind {
        ScheduleKind::Diamond
    }

    fn level_lag(&self, r: usize, t: usize) -> usize {
        (DIAMOND_SPAN + r) * (t - 1)
    }

    fn span(&self) -> usize {
        DIAMOND_SPAN
    }

    fn ring_slots(&self, r: usize) -> usize {
        2 * (DIAMOND_SPAN + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> impl Iterator<Item = &'static dyn Schedule> {
        ScheduleKind::ALL.iter().map(|k| k.schedule())
    }

    #[test]
    fn kind_round_trips_through_strings() {
        for k in ScheduleKind::ALL {
            assert_eq!(ScheduleKind::parse(k.as_str()), Some(k));
            assert_eq!(k.as_str().parse::<ScheduleKind>(), Ok(k));
            assert_eq!(k.schedule().kind(), k);
        }
        assert!(ScheduleKind::parse("trapezoid").is_none());
        assert!("".parse::<ScheduleKind>().is_err());
    }

    #[test]
    fn lag35_binds_the_engine_arithmetic() {
        for r in 1..=4 {
            assert_eq!(LAG35D.ring_slots(r), engine35::ring_slots(r));
            for t in 1..=6 {
                assert_eq!(LAG35D.level_lag(r, t), engine35::level_lag(r, t));
            }
            for c in 1..=4 {
                for nz in [1, 7, 16] {
                    assert_eq!(
                        LAG35D.outer_steps(nz, r, c),
                        engine35::outer_steps(nz, r, c)
                    );
                }
            }
        }
    }

    #[test]
    fn lag35_planes_match_plane_for_level() {
        for r in 1..=3 {
            for c in 1..=4 {
                for nz in [1, 5, 12] {
                    for s in 0..LAG35D.outer_steps(nz, r, c) {
                        for t in 1..=c {
                            let planes: Vec<usize> = LAG35D.planes_for_level(s, r, t, nz).collect();
                            match engine35::plane_for_level(s, r, t, nz) {
                                Some(z) => assert_eq!(planes, vec![z]),
                                None => assert!(planes.is_empty()),
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn wavefront_matches_lag35_at_radius_one() {
        for t in 1..=5 {
            assert_eq!(WAVEFRONT.level_lag(1, t), LAG35D.level_lag(1, t));
        }
        assert_eq!(WAVEFRONT.ring_slots(1), LAG35D.ring_slots(1));
    }

    #[test]
    fn wavefront_is_tighter_for_higher_radius() {
        for r in 2..=4 {
            assert!(WAVEFRONT.level_lag(r, 3) < LAG35D.level_lag(r, 3));
            assert!(WAVEFRONT.ring_slots(r) < LAG35D.ring_slots(r));
        }
    }

    /// Every schedule processes every plane of every level exactly once
    /// across the outer steps — no plane skipped, none repeated, all in
    /// ascending step order.
    #[test]
    fn planes_partition_the_stream_for_every_schedule() {
        for sched in kinds() {
            for r in 1..=3 {
                for c in 1..=4 {
                    for nz in [1, 3, 8, 13] {
                        let steps = sched.outer_steps(nz, r, c);
                        for t in 1..=c {
                            let mut seen = Vec::new();
                            for s in 0..steps {
                                let planes = sched.planes_for_level(s, r, t, nz);
                                // The step owning plane z is ⌊(z + lag)/span⌋.
                                for z in planes.clone() {
                                    let lag = sched.level_lag(r, t);
                                    assert_eq!((z + lag) / sched.span(), s);
                                }
                                seen.extend(planes);
                            }
                            let expect: Vec<usize> = (0..nz).collect();
                            assert_eq!(
                                seen,
                                expect,
                                "schedule {} r={r} c={c} t={t} nz={nz}",
                                sched.kind()
                            );
                        }
                    }
                }
            }
        }
    }

    /// The span window never exceeds the advertised span, and the ring
    /// always holds at least one step's worth of writes plus the reader
    /// reach on both sides.
    #[test]
    fn ring_slots_cover_span_and_reach() {
        for sched in kinds() {
            for r in 1..=4 {
                assert!(sched.ring_slots(r) >= sched.span() + 2 * r);
                for c in 1..=4 {
                    for nz in [4, 9] {
                        for s in 0..sched.outer_steps(nz, r, c) {
                            for t in 1..=c {
                                assert!(sched.planes_for_level(s, r, t, nz).len() <= sched.span());
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn diamond_quarters_the_barrier_count() {
        let (nz, r, c) = (64, 1, 4);
        let lag = LAG35D.outer_steps(nz, r, c);
        let dia = DIAMOND.outer_steps(nz, r, c);
        assert!(dia * 3 < lag, "diamond {dia} steps vs lag {lag}");
    }
}
