//! 3-D spatial blocking (paper §V-A2).
//!
//! The interior is covered by non-overlapping axis-aligned blocks of the
//! requested edge; each block's points are computed with a cache-friendly
//! local traversal before moving to the next block. On a cache-based CPU
//! this is a loop reordering (the cache does the buffering); the modeled
//! traffic accounts for each block loading its ghost-expanded volume, which
//! is where the κ³ᴰ overestimation comes from.

use threefive_grid::{Dim3, DoubleGrid, Real, Region3};

use crate::exec::{elem_bytes, has_interior};
use crate::kernel::StencilKernel;
use crate::stats::SweepStats;

/// One Jacobi sweep ladder with 3-D spatial blocking of edge `block`.
///
/// Result ends in `grids.src()`; bit-exact with
/// [`reference_sweep`](crate::exec::reference_sweep).
///
/// # Panics
/// Panics if `block == 0`.
pub fn blocked3d_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    block: usize,
) -> SweepStats {
    assert!(block > 0, "blocked3d_sweep: block edge must be positive");
    let dim = grids.dim();
    let r = kernel.radius();
    if !has_interior(dim, r) {
        return SweepStats::default();
    }
    let interior = dim.interior_region(r);
    let nx = dim.nx;
    let mut stats = SweepStats::default();

    for _ in 0..steps {
        let (src, dst) = grids.pair_mut();
        let mut bz = interior.z0;
        while bz < interior.z1 {
            let z1 = (bz + block).min(interior.z1);
            let mut by = interior.y0;
            while by < interior.y1 {
                let y1 = (by + block).min(interior.y1);
                let mut bx = interior.x0;
                while bx < interior.x1 {
                    let x1 = (bx + block).min(interior.x1);
                    let owned = Region3::new(bx, x1, by, y1, bz, z1);
                    for z in owned.zs() {
                        let planes: Vec<&[T]> = (z - r..=z + r).map(|zz| src.plane(zz)).collect();
                        for y in owned.ys() {
                            let out = &mut dst.row_mut(y, z)[owned.xs()];
                            kernel.apply_row(&planes, nx, y, owned.xs(), out);
                        }
                    }
                    stats.stencil_updates += owned.len() as u64;
                    stats.committed_points += owned.len() as u64;
                    stats = stats + block_traffic::<T>(dim, &owned, r);
                    bx = x1;
                }
                by = y1;
            }
            bz = z1;
        }
        grids.swap();
    }
    stats
}

/// Modeled traffic for one block: the ghost-expanded block volume is read
/// (the κ³ᴰ overestimation), the owned volume is written with
/// write-allocate.
fn block_traffic<T: Real>(dim: Dim3, owned: &Region3, r: usize) -> SweepStats {
    let e = elem_bytes::<T>();
    let expanded = Region3::new(
        owned.x0.saturating_sub(r),
        (owned.x1 + r).min(dim.nx),
        owned.y0.saturating_sub(r),
        (owned.y1 + r).min(dim.ny),
        owned.z0.saturating_sub(r),
        (owned.z1 + r).min(dim.nz),
    );
    SweepStats {
        stencil_updates: 0,
        committed_points: 0,
        dram_bytes_read: (expanded.len() + owned.len()) as u64 * e,
        dram_bytes_written: owned.len() as u64 * e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::reference_sweep;
    use crate::kernel::{GenericStar, SevenPoint};
    use crate::planner::kappa_3d;
    use threefive_grid::Grid3;

    fn init<T: Real>(d: Dim3) -> DoubleGrid<T> {
        DoubleGrid::from_initial(Grid3::from_fn(d, |x, y, z| {
            T::from_f64((((x * 11 + y * 5 + z * 2) % 19) as f64) * 0.25 - 2.0)
        }))
    }

    #[test]
    fn matches_reference_for_various_block_edges() {
        let d = Dim3::new(17, 13, 9);
        let k = SevenPoint::new(0.4f32, 0.1);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, 3);
        for block in [1usize, 2, 4, 5, 8, 64] {
            let mut got = init::<f32>(d);
            blocked3d_sweep(&k, &mut got, 3, block);
            assert_eq!(got.src().as_slice(), want.src().as_slice(), "block={block}");
        }
    }

    #[test]
    fn matches_reference_for_radius_two() {
        let d = Dim3::cube(12);
        let k = GenericStar::<f64>::smoothing(2);
        let mut want = init::<f64>(d);
        reference_sweep(&k, &mut want, 2);
        let mut got = init::<f64>(d);
        blocked3d_sweep(&k, &mut got, 2, 4);
        assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    #[test]
    fn no_compute_overestimation_for_spatial_blocking() {
        // Spatial blocking rereads ghosts but never recomputes points.
        let d = Dim3::cube(16);
        let k = SevenPoint::new(0.4f64, 0.1);
        let mut g = init::<f64>(d);
        let stats = blocked3d_sweep(&k, &mut g, 2, 4);
        assert!((stats.overestimation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn modeled_read_traffic_tracks_kappa_3d() {
        // Interior-only blocks of edge b with radius r: extra read factor
        // should approach κ³ᴰ(r, b+2r) — each owned b³ region loads
        // (b+2r)³. Use a grid where blocks divide the interior evenly.
        let b = 4usize;
        let r = 1usize;
        let d = Dim3::cube(b * 4 + 2); // interior 16³ = 4³ blocks of edge 4
        let k = SevenPoint::new(0.4f32, 0.1);
        let mut g = init::<f32>(d);
        let stats = blocked3d_sweep(&k, &mut g, 1, b);
        // Ignore clamping at the domain faces: interior blocks dominate.
        // Count reads per committed point (minus the write-allocate part).
        let reads_per_point =
            (stats.dram_bytes_read / 4) as f64 / stats.committed_points as f64 - 1.0; // subtract the write-allocate fetch of the output
        let kappa = kappa_3d(r, b + 2 * r, b + 2 * r, b + 2 * r);
        // Clamped boundary blocks make measured slightly smaller; allow a
        // hair above for floating-point rounding of κ itself.
        assert!(
            reads_per_point <= kappa * 1.0001 && reads_per_point > 0.8 * kappa,
            "reads/pt {reads_per_point} vs kappa {kappa}"
        );
    }
}
