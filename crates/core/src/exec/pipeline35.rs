//! The 3.5-D blocking pipeline (paper §V-C, §V-E) — serial and parallel.
//!
//! # Structure
//!
//! The XY plane is covered by non-overlapping *owned* tiles of
//! `dim_x × dim_y`. Each tile's footprint is expanded by `R·dim_T` into a
//! *loaded* region. For every chunk of `dim_T` time steps the tile streams
//! through Z once: time level `t′ = 1` reads the source grid (time `T`),
//! levels `1 < t′ < dim_T` read/write in-cache plane rings, and level
//! `dim_T` writes the destination grid (time `T + dim_T`) — so DRAM sees
//! each point once per `dim_T` steps.
//!
//! Under the default [`ScheduleKind::Lag35d`](crate::exec::ScheduleKind)
//! schedule, levels are staggered along Z by `2R` planes (the paper's
//! `z_s = z + 2R(dim_T − t″)` schedule): at outer step `s`, level `t′`
//! processes plane `z = s − 2R(t′−1)`. The extra `R` of lag (beyond the
//! `R` strictly required by the data dependence) is what lets **all**
//! levels execute concurrently in one barrier-separated step, giving
//! `dim_T`-fold more parallelism than one-level-at-a-time schemes (§V-C).
//! [`Blocking35::with_schedule`] swaps in the shared-cache wavefront or
//! wavefront-diamond schedules instead — same kernels, same results,
//! different lag/ring/barrier arithmetic (see
//! [`schedule`](crate::exec::schedule)).
//!
//! # Ring capacity
//!
//! The paper stores `2R+2` sub-planes per time level. With the `2R` lag a
//! level's ring must simultaneously retain the producer's current plane
//! `z` and the consumer's read window `[z−3R, z−R]`, i.e. `3R+1` distinct
//! planes — which equals `2R+2` at the paper's `R = 1` but exceeds it for
//! `R ≥ 2`. We allocate `max(2R+2, 3R+1)` slots so the pipeline is correct
//! for every radius; the planner's capacity formula (Eq. 1) keeps the
//! paper's `2R+2` since both kernels studied have `R = 1`.
//!
//! # Parallelization (§V-D)
//!
//! Within a tile, every thread owns a fixed band of Y rows of **every**
//! sub-plane at **every** time level (the flexible load-balancing scheme),
//! performing identical DRAM traffic and flops; one barrier separates
//! consecutive outer steps. The serial executor is the same code run by a
//! one-member team.
//!
//! Since the engine refactor the Z-stream schedule, rings, barriers and
//! fault handling all live in [`engine35`](crate::exec::engine35); this
//! module contributes the Dirichlet stencil [`PlaneKernel`] impl
//! ([`StencilPlanes`]) and the public sweep entry points.

use std::ops::Range;
use std::time::Duration;

use threefive_grid::{DoubleGrid, Grid3, Real};
use threefive_sync::{Observer, SharedSlice, SpinBarrier, ThreadTeam};

use crate::error::ExecError;
use crate::exec::engine35::{stream_chunk, BoundaryPolicy, PlaneKernel, Rings, SweepCtx, TileGeom};
use crate::exec::has_interior;
use crate::exec::Blocking35;
use crate::kernel::StencilKernel;
use crate::stats::SweepStats;

/// Serial 3.5-D blocked sweep. Result ends in `grids.src()`; bit-exact
/// with [`reference_sweep`](crate::exec::reference_sweep).
pub fn blocked35d_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    b: Blocking35,
) -> SweepStats {
    let team = ThreadTeam::new(1);
    parallel35d_sweep(kernel, grids, steps, b, &team)
}

/// Temporal-only blocking (Habich-style, §VII-B "only temporal blocking"):
/// the tile is the whole XY plane, so there is no ghost overestimation —
/// but the plane rings only fit in cache for small grids.
pub fn temporal_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    dim_t: usize,
) -> SweepStats {
    let d = grids.dim();
    blocked35d_sweep(kernel, grids, steps, Blocking35::new(d.nx, d.ny, dim_t))
}

/// Parallel 3.5-D blocked sweep over a persistent [`ThreadTeam`].
///
/// Result ends in `grids.src()`; bit-exact with
/// [`reference_sweep`](crate::exec::reference_sweep) for every team size.
///
/// # Panics
/// Panics if a team member panics mid-sweep; see
/// [`try_parallel35d_sweep`] for the non-panicking, watchdogged variant.
pub fn parallel35d_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    b: Blocking35,
    team: &ThreadTeam,
) -> SweepStats {
    match try_parallel35d_sweep(kernel, grids, steps, b, team, None, &Observer::disabled()) {
        Ok(stats) => stats,
        Err(e) => panic!("parallel35d_sweep: {e}"),
    }
}

/// Fault-tolerant, observable parallel 3.5-D blocked sweep — the single
/// entry point behind every stencil executor variant.
///
/// Behaves like [`parallel35d_sweep`], but failures inside the parallel
/// region surface as [`ExecError`] instead of panics or hangs:
///
/// * a member **panic** poisons the per-Z-step barrier (via an RAII guard)
///   so the remaining members drain at their next barrier episode instead
///   of spinning forever, and the call returns
///   [`SyncError`](threefive_sync::SyncError)`::TeamPanicked` wrapped in
///   [`ExecError::Sync`];
/// * with `deadline: Some(d)`, a member **stall** longer than `d` trips
///   the barrier watchdog: the waiting members poison the barrier and
///   drain, and the call returns
///   [`SyncError`](threefive_sync::SyncError)`::BarrierTimeout`. The call
///   itself still joins the stalled member (the closure borrows the
///   caller's grids, so abandoning it would be unsound); the deadline
///   bounds how long *healthy* members are held hostage, and the facade's
///   ladder runs retries on a fresh team;
/// * `deadline: None` disables the watchdog (benchmark configuration) —
///   panic poisoning stays active.
///
/// Observability composes through `obs` instead of dedicated entry
/// points: [`Observer::with_instrument`] accumulates per-thread
/// compute/barrier-wait timing, [`Observer::with_tracer`] records one
/// plane span per streamed Z plane × time level and one barrier span per
/// episode, and [`Observer::disabled`] never reads the clock — the hot
/// loop is bit-identical to the unobserved fast path.
///
/// On `Err` the grid contents are unspecified (a chunk may be partially
/// committed); callers that need rollback must snapshot first, as
/// [`run_plan`](../../threefive/fn.run_plan.html) does.
pub fn try_parallel35d_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    b: Blocking35,
    team: &ThreadTeam,
    deadline: Option<Duration>,
    obs: &Observer<'_>,
) -> Result<SweepStats, ExecError> {
    Blocking35::try_new(b.dim_x, b.dim_y, b.dim_t)?;
    let dim = grids.dim();
    let r = kernel.radius();
    if !has_interior(dim, r) {
        return Ok(SweepStats::default());
    }
    let barrier = SpinBarrier::new(team.threads());
    let mut stats = SweepStats::default();
    let mut remaining = steps;
    while remaining > 0 {
        let chunk = remaining.min(b.dim_t);
        let (src, dst) = grids.pair_mut();
        let dst_view = SharedSlice::new(dst.as_mut_slice());
        let planes = StencilPlanes {
            kernel,
            src,
            dst: &dst_view,
        };
        let ctx = SweepCtx {
            team,
            barrier: &barrier,
            deadline,
            obs,
        };
        stream_chunk(&planes, dim, b, chunk, &ctx, |geom| {
            stats = stats + geom.stats::<T>();
        })?;
        grids.swap();
        remaining -= chunk;
    }
    Ok(stats)
}

/// The Dirichlet stencil workload as a [`PlaneKernel`]: level 1 reads the
/// source grid, intermediate levels read/write the plane rings, the final
/// level writes the destination grid, and the fixed boundary rim is
/// copied into intermediate rings so deeper levels see correct values.
pub(crate) struct StencilPlanes<'a, T: Real, K: StencilKernel<T>> {
    pub(crate) kernel: &'a K,
    pub(crate) src: &'a Grid3<T>,
    pub(crate) dst: &'a SharedSlice<'a, T>,
}

impl<T: Real, K: StencilKernel<T>> PlaneKernel<T> for StencilPlanes<'_, T, K> {
    fn radius(&self) -> usize {
        self.kernel.radius()
    }

    fn boundary(&self) -> BoundaryPolicy {
        BoundaryPolicy::DirichletRim
    }

    fn process_level(
        &self,
        geom: &TileGeom,
        rings: &Rings<'_, T>,
        t: usize,
        z: usize,
        my_rows: &Range<usize>,
    ) {
        let (r, c) = (geom.radius(), geom.levels());
        let dim = geom.dim();
        let (gx0, gx1, gy0) = (geom.gx0(), geom.gx1(), geom.gy0());
        let lx = geom.lx();
        let is_final = t == c;
        let z_boundary = z < r || z >= dim.nz - r;

        if z_boundary {
            if !is_final {
                // Dirichlet Z plane: intermediate levels must hold it so the
                // next level's reads see boundary values; the final level's
                // destination grid already carries them.
                for row in my_rows.clone() {
                    let y = gy0 + row;
                    // SAFETY: this thread owns `row` of every ring plane.
                    let dst = unsafe { rings.row_mut(t - 1, z, 0, row, 0, lx) };
                    dst.copy_from_slice(&self.src.row(y, z)[gx0..gx1]);
                }
            }
            return;
        }

        let xs = geom.compute_x(t);
        let ys = geom.compute_y(t);

        // Stencil rows this thread owns.
        let row_lo = ys.start.max(gy0 + my_rows.start);
        let row_hi = ys.end.min(gy0 + my_rows.end);

        if row_lo < row_hi && !xs.is_empty() {
            // The plane window is 2R+1 references; stage them on the stack
            // so the per-plane hot path never touches the allocator. Radii
            // past the in-tree kernels' range take a cold heap spill.
            const MAX_WIN: usize = 9;
            let mut stack: [&[T]; MAX_WIN] = [&[]; MAX_WIN];
            // analyze:allow(hot-path-alloc) cold spill path, only taken when R > 4
            let mut spill: Vec<&[T]> = Vec::new();
            let planes: &mut [&[T]] = if 2 * r < MAX_WIN {
                &mut stack[..2 * r + 1]
            } else {
                spill.resize(2 * r + 1, &[]);
                &mut spill
            };
            if t == 1 {
                // Level 1 reads the source grid directly (global stride).
                for (i, zz) in (z - r..=z + r).enumerate() {
                    planes[i] = self.src.plane(zz);
                }
            } else {
                // Deeper levels read the previous level's ring (local stride).
                for (i, zz) in (z - r..=z + r).enumerate() {
                    // SAFETY: those planes were completed at earlier outer
                    // steps (barrier-separated) and their slots are disjoint
                    // from any plane written in this step.
                    planes[i] = unsafe { rings.plane(t - 2, zz, 0) };
                }
            }
            let planes: &[&[T]] = planes;
            let (nx, x_off, y_off) = if t == 1 {
                (dim.nx, 0usize, 0usize)
            } else {
                (lx, gx0, gy0)
            };

            for y in row_lo..row_hi {
                let out: &mut [T] = if is_final {
                    // SAFETY: this thread owns row `y` of the destination.
                    unsafe { self.dst.slice_mut(dim.idx(xs.start, y, z), xs.len()) }
                } else {
                    // SAFETY: this thread owns this local row of the ring.
                    unsafe { rings.row_mut(t - 1, z, 0, y - gy0, xs.start - gx0, xs.len()) }
                };
                self.kernel
                    .apply_row(planes, nx, y - y_off, xs.start - x_off..xs.end - x_off, out);

                if !is_final {
                    // Dirichlet X rim inside the loaded footprint, so deeper
                    // levels read correct boundary values.
                    if gx0 == 0 && r > 0 {
                        // SAFETY: same row ownership as above.
                        let rim = unsafe { rings.row_mut(t - 1, z, 0, y - gy0, 0, r) };
                        rim.copy_from_slice(&self.src.row(y, z)[0..r]);
                    }
                    if gx1 == dim.nx && r > 0 {
                        // SAFETY: same row ownership as above.
                        let rim = unsafe { rings.row_mut(t - 1, z, 0, y - gy0, lx - r, r) };
                        rim.copy_from_slice(&self.src.row(y, z)[dim.nx - r..dim.nx]);
                    }
                }
            }
        }

        if !is_final {
            // Dirichlet Y rows (grid faces) inside the loaded footprint.
            for row in my_rows.clone() {
                let y = gy0 + row;
                if y < r || y >= dim.ny - r {
                    // SAFETY: this thread owns `row` of every ring plane.
                    let dst = unsafe { rings.row_mut(t - 1, z, 0, row, 0, lx) };
                    dst.copy_from_slice(&self.src.row(y, z)[gx0..gx1]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::reference_sweep;
    use crate::kernel::{GenericStar, SevenPoint, TwentySevenPoint};
    use crate::planner::kappa_35d;
    use threefive_grid::Dim3;
    use threefive_sync::{Instrument, Tracer};

    fn init<T: Real>(d: Dim3) -> DoubleGrid<T> {
        DoubleGrid::from_initial(Grid3::from_fn(d, |x, y, z| {
            T::from_f64((((x * 17 + y * 23 + z * 29) % 31) as f64) * 0.125 - 1.5)
        }))
    }

    #[test]
    fn serial_matches_reference_across_tilings() {
        let d = Dim3::new(14, 12, 10);
        let k = SevenPoint::new(0.3f32, 0.1);
        for steps in [1usize, 2, 3, 4, 6] {
            let mut want = init::<f32>(d);
            reference_sweep(&k, &mut want, steps);
            for (tx, ty, dt) in [
                (6usize, 6usize, 2usize),
                (14, 12, 2),
                (5, 7, 3),
                (4, 4, 1),
                (14, 12, 4),
                (3, 3, 2),
            ] {
                let mut got = init::<f32>(d);
                blocked35d_sweep(&k, &mut got, steps, Blocking35::new(tx, ty, dt));
                assert_eq!(
                    got.src().as_slice(),
                    want.src().as_slice(),
                    "steps={steps} tile={tx}x{ty} dimT={dt}"
                );
            }
        }
    }

    #[test]
    fn serial_matches_reference_f64_27pt() {
        let d = Dim3::cube(11);
        let k = TwentySevenPoint::<f64>::smoothing();
        let mut want = init::<f64>(d);
        reference_sweep(&k, &mut want, 4);
        let mut got = init::<f64>(d);
        blocked35d_sweep(&k, &mut got, 4, Blocking35::new(5, 6, 2));
        assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    #[test]
    fn serial_matches_reference_radius_two() {
        // R = 2 exercises the 3R+1 ring-capacity generalization.
        let d = Dim3::cube(16);
        let k = GenericStar::<f64>::smoothing(2);
        for steps in [2usize, 4, 5] {
            let mut want = init::<f64>(d);
            reference_sweep(&k, &mut want, steps);
            let mut got = init::<f64>(d);
            blocked35d_sweep(&k, &mut got, steps, Blocking35::new(7, 9, 2));
            assert_eq!(got.src().as_slice(), want.src().as_slice(), "steps={steps}");
        }
    }

    #[test]
    fn parallel_matches_reference_for_every_team_size() {
        let d = Dim3::new(13, 11, 9);
        let k = SevenPoint::new(0.3f32, 0.1);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, 4);
        for threads in [1usize, 2, 3, 4, 7] {
            let team = ThreadTeam::new(threads);
            let mut got = init::<f32>(d);
            parallel35d_sweep(&k, &mut got, 4, Blocking35::new(6, 5, 2), &team);
            assert_eq!(
                got.src().as_slice(),
                want.src().as_slice(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_matches_with_partial_rows() {
        // More threads than tile rows: the partition degrades gracefully
        // (some members idle), results stay exact.
        let d = Dim3::cube(8);
        let k = SevenPoint::new(0.25f64, 0.125);
        let mut want = init::<f64>(d);
        reference_sweep(&k, &mut want, 3);
        let team = ThreadTeam::new(6);
        let mut got = init::<f64>(d);
        parallel35d_sweep(&k, &mut got, 3, Blocking35::new(4, 2, 3), &team);
        assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    #[test]
    fn temporal_only_is_ghost_free() {
        let d = Dim3::cube(12);
        let k = SevenPoint::new(0.3f32, 0.1);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, 4);
        let mut got = init::<f32>(d);
        let stats = temporal_sweep(&k, &mut got, 4, 2);
        assert_eq!(got.src().as_slice(), want.src().as_slice());
        // Whole-plane tiles ⇒ every level computes the full interior ⇒ no
        // recompute overestimation.
        assert!((stats.overestimation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_and_recompute_track_kappa_35d() {
        let (tx, dt, r) = (16usize, 2usize, 1usize);
        let d = Dim3::new(tx * 3, tx * 3, 12);
        let k = SevenPoint::new(0.3f64, 0.1);
        let mut g = init::<f64>(d);
        let stats = blocked35d_sweep(&k, &mut g, dt, Blocking35::new(tx, tx, dt));
        let loaded = tx + 2 * r * dt;
        let kappa = kappa_35d(r, dt, loaded, loaded);

        // Bandwidth: loaded footprints per chunk vs one-load-per-point.
        let e = 8u64;
        let commit_bytes = stats.committed_points / dt as u64 * e;
        let measured_kappa =
            (stats.dram_bytes_read - commit_bytes) as f64 / (d.len() as u64 * e) as f64;
        assert!(
            measured_kappa <= kappa * 1.0001 && measured_kappa > 0.6 * kappa,
            "traffic {measured_kappa} vs kappa {kappa}"
        );

        // Compute: ghost recomputation is visible but bounded by κ.
        let over = stats.overestimation();
        assert!(
            over > 1.02 && over <= kappa,
            "recompute {over} vs kappa {kappa}"
        );
    }

    #[test]
    fn dram_traffic_reduces_by_dim_t() {
        // The headline claim: 3.5-D traffic ≈ (no-blocking traffic) × κ/dimT.
        let d = Dim3::cube(24);
        let k = SevenPoint::new(0.3f32, 0.1);
        let steps = 4usize;
        let mut a = init::<f32>(d);
        let naive = reference_sweep(&k, &mut a, steps);
        let mut b = init::<f32>(d);
        let blocked = blocked35d_sweep(&k, &mut b, steps, Blocking35::new(12, 12, 2));
        let ratio = naive.dram_bytes() as f64 / blocked.dram_bytes() as f64;
        // dimT = 2 with modest κ: expect between 1.4X and 2X reduction.
        assert!(ratio > 1.4 && ratio <= 2.2, "ratio {ratio}");
    }

    #[test]
    fn zero_interior_grid_is_no_op() {
        let d = Dim3::new(5, 2, 5);
        let k = SevenPoint::new(0.3f32, 0.1);
        let mut g = init::<f32>(d);
        let before = g.src().clone();
        let stats = blocked35d_sweep(&k, &mut g, 3, Blocking35::new(4, 4, 2));
        assert_eq!(g.src().as_slice(), before.as_slice());
        assert_eq!(stats, SweepStats::default());
    }

    #[test]
    fn instrumented_sweep_is_bit_exact_and_records_timing() {
        let d = Dim3::cube(12);
        let k = SevenPoint::new(0.3f32, 0.1);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, 4);
        let team = ThreadTeam::new(3);
        let instr = Instrument::enabled(team.threads());
        let mut got = init::<f32>(d);
        let stats = try_parallel35d_sweep(
            &k,
            &mut got,
            4,
            Blocking35::new(6, 6, 2),
            &team,
            None,
            &Observer::with_instrument(&instr),
        )
        .unwrap();
        assert_eq!(got.src().as_slice(), want.src().as_slice());
        assert!(stats.committed_points > 0);
        let timing = instr.timing();
        assert_eq!(timing.per_thread.len(), 3);
        // Every member passed through barriers and compute regions.
        assert!(timing.total_compute_ns() > 0);
        let share = timing.barrier_share();
        assert!((0.0..=1.0).contains(&share), "share {share}");
    }

    #[test]
    fn disabled_instrument_collects_nothing() {
        let d = Dim3::cube(8);
        let k = SevenPoint::new(0.3f32, 0.1);
        let team = ThreadTeam::new(2);
        let instr = Instrument::disabled();
        let mut g = init::<f32>(d);
        try_parallel35d_sweep(
            &k,
            &mut g,
            2,
            Blocking35::new(4, 4, 2),
            &team,
            None,
            &Observer::with_instrument(&instr),
        )
        .unwrap();
        assert!(instr.timing().per_thread.is_empty());
        assert_eq!(instr.timing().barrier_share(), 0.0);
    }

    #[test]
    fn traced_sweep_is_bit_exact_and_spans_every_plane_level() {
        use threefive_sync::TraceEventKind;
        let d = Dim3::cube(12);
        let k = SevenPoint::new(0.3f32, 0.1);
        let (steps, dim_t, threads) = (4usize, 2usize, 2usize);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, steps);
        let team = ThreadTeam::new(threads);
        let instr = Instrument::enabled(threads);
        let tracer = Tracer::enabled(threads);
        let mut got = init::<f32>(d);
        try_parallel35d_sweep(
            &k,
            &mut got,
            steps,
            Blocking35::new(d.nx, d.ny, dim_t), // one tile: exact span accounting
            &team,
            None,
            &Observer::new(&instr, &tracer),
        )
        .unwrap();
        assert_eq!(got.src().as_slice(), want.src().as_slice());
        let snap = tracer.snapshot();
        assert_eq!(snap.threads.len(), threads);
        assert_eq!(snap.total_dropped(), 0);
        let chunks = steps / dim_t;
        let outer = d.nz + 2 * (dim_t - 1);
        for tt in &snap.threads {
            let planes = tt
                .events
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::Plane { .. }))
                .count();
            // One span per (plane, time level) per chunk on every thread.
            assert_eq!(planes, d.nz * dim_t * chunks);
            let barriers = tt
                .events
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::Barrier { .. }))
                .count();
            assert_eq!(barriers, outer * chunks);
            // Recording order gives monotonic per-thread start times.
            let starts: Vec<u64> = tt.events.iter().map(|e| e.start_ns).collect();
            assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        }
        // The instrument now also carries the wait histogram.
        assert_eq!(
            instr.timing().wait_hist.total() as usize,
            outer * chunks * threads
        );
    }

    #[test]
    fn disabled_observer_keeps_sweep_bit_identical() {
        let d = Dim3::new(11, 9, 10);
        let k = SevenPoint::new(0.3f64, 0.1);
        let team = ThreadTeam::new(3);
        let b = Blocking35::new(5, 6, 2);
        let mut plain = init::<f64>(d);
        try_parallel35d_sweep(&k, &mut plain, 4, b, &team, None, &Observer::disabled()).unwrap();
        let mut traced = init::<f64>(d);
        let tracer = Tracer::disabled();
        try_parallel35d_sweep(
            &k,
            &mut traced,
            4,
            b,
            &team,
            None,
            &Observer::with_tracer(&tracer),
        )
        .unwrap();
        assert_eq!(plain.src().as_slice(), traced.src().as_slice());
        assert_eq!(tracer.snapshot().total_events(), 0);
    }

    #[test]
    fn every_schedule_matches_reference_in_parallel() {
        use crate::exec::schedule::ScheduleKind;
        let d = Dim3::new(14, 11, 13);
        let k = SevenPoint::new(0.3f32, 0.1);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, 5);
        for schedule in ScheduleKind::ALL {
            for threads in [1usize, 3] {
                let team = ThreadTeam::new(threads);
                let mut got = init::<f32>(d);
                parallel35d_sweep(
                    &k,
                    &mut got,
                    5,
                    Blocking35::new(6, 5, 2).with_schedule(schedule),
                    &team,
                );
                assert_eq!(
                    got.src().as_slice(),
                    want.src().as_slice(),
                    "schedule={schedule} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn steps_not_multiple_of_dim_t() {
        let d = Dim3::cube(10);
        let k = SevenPoint::new(0.3f64, 0.1);
        for steps in 1..=7 {
            let mut want = init::<f64>(d);
            reference_sweep(&k, &mut want, steps);
            let mut got = init::<f64>(d);
            blocked35d_sweep(&k, &mut got, steps, Blocking35::new(5, 5, 3));
            assert_eq!(got.src().as_slice(), want.src().as_slice(), "steps={steps}");
        }
    }
}
