//! The 3.5-D blocking pipeline (paper §V-C, §V-E) — serial and parallel.
//!
//! # Structure
//!
//! The XY plane is covered by non-overlapping *owned* tiles of
//! `dim_x × dim_y`. Each tile's footprint is expanded by `R·dim_T` into a
//! *loaded* region. For every chunk of `dim_T` time steps the tile streams
//! through Z once: time level `t′ = 1` reads the source grid (time `T`),
//! levels `1 < t′ < dim_T` read/write in-cache plane rings, and level
//! `dim_T` writes the destination grid (time `T + dim_T`) — so DRAM sees
//! each point once per `dim_T` steps.
//!
//! Levels are staggered along Z by `2R` planes (the paper's
//! `z_s = z + 2R(dim_T − t″)` schedule): at outer step `s`, level `t′`
//! processes plane `z = s − 2R(t′−1)`. The extra `R` of lag (beyond the
//! `R` strictly required by the data dependence) is what lets **all**
//! levels execute concurrently in one barrier-separated step, giving
//! `dim_T`-fold more parallelism than one-level-at-a-time schemes (§V-C).
//!
//! # Ring capacity
//!
//! The paper stores `2R+2` sub-planes per time level. With the `2R` lag a
//! level's ring must simultaneously retain the producer's current plane
//! `z` and the consumer's read window `[z−3R, z−R]`, i.e. `3R+1` distinct
//! planes — which equals `2R+2` at the paper's `R = 1` but exceeds it for
//! `R ≥ 2`. We allocate `max(2R+2, 3R+1)` slots so the pipeline is correct
//! for every radius; the planner's capacity formula (Eq. 1) keeps the
//! paper's `2R+2` since both kernels studied have `R = 1`.
//!
//! # Parallelization (§V-D)
//!
//! Within a tile, every thread owns a fixed band of Y rows of **every**
//! sub-plane at **every** time level (the flexible load-balancing scheme),
//! performing identical DRAM traffic and flops; one barrier separates
//! consecutive outer steps. The serial executor is the same code run by a
//! one-member team.

use std::ops::Range;
use std::sync::Mutex;
use std::time::Duration;

use threefive_grid::partition::even_range;
use threefive_grid::{Dim3, DoubleGrid, Grid3, PlaneRing, Real};
use threefive_sync::{
    Instrument, SharedSlice, SpinBarrier, SyncError, ThreadTeam, TraceEventKind, Tracer,
};

use crate::error::ExecError;
use crate::exec::{elem_bytes, has_interior};
use crate::faults;
use crate::kernel::StencilKernel;
use crate::stats::SweepStats;

/// 3.5-D blocking parameters: owned XY tile dims and temporal factor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocking35 {
    /// Owned tile extent along X.
    pub dim_x: usize,
    /// Owned tile extent along Y.
    pub dim_y: usize,
    /// Temporal blocking factor `dim_T`.
    pub dim_t: usize,
}

impl Blocking35 {
    /// Creates blocking parameters.
    ///
    /// # Panics
    /// Panics if any parameter is zero; see
    /// [`try_new`](Blocking35::try_new) for the non-panicking variant.
    pub fn new(dim_x: usize, dim_y: usize, dim_t: usize) -> Self {
        match Self::try_new(dim_x, dim_y, dim_t) {
            Ok(b) => b,
            Err(_) => panic!("Blocking35: zero parameter"),
        }
    }

    /// Creates blocking parameters, rejecting zero extents with
    /// [`ExecError::InvalidBlocking`] instead of panicking.
    pub fn try_new(dim_x: usize, dim_y: usize, dim_t: usize) -> Result<Self, ExecError> {
        if dim_x == 0 || dim_y == 0 || dim_t == 0 {
            return Err(ExecError::InvalidBlocking {
                dim_x,
                dim_y,
                dim_t,
            });
        }
        Ok(Self {
            dim_x,
            dim_y,
            dim_t,
        })
    }
}

/// Serial 3.5-D blocked sweep. Result ends in `grids.src()`; bit-exact
/// with [`reference_sweep`](crate::exec::reference_sweep).
pub fn blocked35d_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    b: Blocking35,
) -> SweepStats {
    let team = ThreadTeam::new(1);
    parallel35d_sweep(kernel, grids, steps, b, &team)
}

/// Temporal-only blocking (Habich-style, §VII-B "only temporal blocking"):
/// the tile is the whole XY plane, so there is no ghost overestimation —
/// but the plane rings only fit in cache for small grids.
pub fn temporal_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    dim_t: usize,
) -> SweepStats {
    let d = grids.dim();
    blocked35d_sweep(kernel, grids, steps, Blocking35::new(d.nx, d.ny, dim_t))
}

/// Parallel 3.5-D blocked sweep over a persistent [`ThreadTeam`].
///
/// Result ends in `grids.src()`; bit-exact with
/// [`reference_sweep`](crate::exec::reference_sweep) for every team size.
///
/// # Panics
/// Panics if a team member panics mid-sweep; see
/// [`try_parallel35d_sweep`] for the non-panicking, watchdogged variant.
pub fn parallel35d_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    b: Blocking35,
    team: &ThreadTeam,
) -> SweepStats {
    match try_parallel35d_sweep(kernel, grids, steps, b, team, None) {
        Ok(stats) => stats,
        Err(e) => panic!("parallel35d_sweep: {e}"),
    }
}

/// Fault-tolerant parallel 3.5-D blocked sweep.
///
/// Behaves like [`parallel35d_sweep`], but failures inside the parallel
/// region surface as [`ExecError`] instead of panics or hangs:
///
/// * a member **panic** poisons the per-Z-step barrier (via an RAII guard)
///   so the remaining members drain at their next barrier episode instead
///   of spinning forever, and the call returns
///   [`SyncError::TeamPanicked`] wrapped in [`ExecError::Sync`];
/// * with `deadline: Some(d)`, a member **stall** longer than `d` trips
///   the barrier watchdog: the waiting members poison the barrier and
///   drain, and the call returns [`SyncError::BarrierTimeout`]. The call
///   itself still joins the stalled member (the closure borrows the
///   caller's grids, so abandoning it would be unsound); the deadline
///   bounds how long *healthy* members are held hostage, and the facade's
///   ladder runs retries on a fresh team;
/// * `deadline: None` disables the watchdog (benchmark configuration) —
///   panic poisoning stays active.
///
/// On `Err` the grid contents are unspecified (a chunk may be partially
/// committed); callers that need rollback must snapshot first, as
/// [`run_plan`](../../threefive/fn.run_plan.html) does.
pub fn try_parallel35d_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    b: Blocking35,
    team: &ThreadTeam,
    deadline: Option<Duration>,
) -> Result<SweepStats, ExecError> {
    try_parallel35d_sweep_instrumented(
        kernel,
        grids,
        steps,
        b,
        team,
        deadline,
        &Instrument::disabled(),
    )
}

/// [`try_parallel35d_sweep`] with per-thread compute/barrier-wait timing.
///
/// Each team member accumulates nanoseconds of compute (between barriers)
/// and barrier wait into `instr`; snapshot with
/// [`Instrument::timing`] after the call. A disabled handle
/// ([`Instrument::disabled`]) never reads the clock, so the hot loop is
/// identical to the uninstrumented sweep — this is the entry point the
/// benchmark harness uses to report barrier-wait share.
pub fn try_parallel35d_sweep_instrumented<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    b: Blocking35,
    team: &ThreadTeam,
    deadline: Option<Duration>,
    instr: &Instrument,
) -> Result<SweepStats, ExecError> {
    try_parallel35d_sweep_traced(
        kernel,
        grids,
        steps,
        b,
        team,
        deadline,
        instr,
        &Tracer::disabled(),
    )
}

/// [`try_parallel35d_sweep_instrumented`] with pipeline tracing.
///
/// Each team member records one [`TraceEventKind::Plane`] span per
/// streamed Z plane × time level it processes and one
/// [`TraceEventKind::Barrier`] span per barrier episode (entry to exit)
/// into `tracer`; snapshot with [`Tracer::snapshot`] after the call and
/// export with the bench crate's Perfetto writer. A disabled tracer
/// ([`Tracer::disabled`]) never reads the clock, so the sweep stays
/// bit-identical to the untraced fast path.
#[allow(clippy::too_many_arguments)]
pub fn try_parallel35d_sweep_traced<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    b: Blocking35,
    team: &ThreadTeam,
    deadline: Option<Duration>,
    instr: &Instrument,
    tracer: &Tracer,
) -> Result<SweepStats, ExecError> {
    Blocking35::try_new(b.dim_x, b.dim_y, b.dim_t)?;
    let dim = grids.dim();
    let r = kernel.radius();
    if !has_interior(dim, r) {
        return Ok(SweepStats::default());
    }
    let barrier = SpinBarrier::new(team.threads());
    let mut stats = SweepStats::default();
    let mut remaining = steps;
    while remaining > 0 {
        let chunk = remaining.min(b.dim_t);
        let (src, dst) = grids.pair_mut();
        let dst_dim = dim;
        let dst_view = SharedSlice::new(dst.as_mut_slice());
        let mut oy = 0usize;
        while oy < dim.ny {
            let oy1 = (oy + b.dim_y).min(dim.ny);
            let mut ox = 0usize;
            while ox < dim.nx {
                let ox1 = (ox + b.dim_x).min(dim.nx);
                let geom = TileGeom::new(dim, r, chunk, ox, ox1, oy, oy1);
                if geom.has_commit() {
                    tile_pipeline(
                        kernel, src, &dst_view, dst_dim, &geom, team, &barrier, deadline, instr,
                        tracer,
                    )?;
                    stats = stats + geom.stats::<T>();
                }
                ox = ox1;
            }
            oy = oy1;
        }
        grids.swap();
        remaining -= chunk;
    }
    Ok(stats)
}

/// Geometry of one tile × chunk: owned/loaded regions and per-level
/// compute ranges.
pub(crate) struct TileGeom {
    dim: Dim3,
    r: usize,
    c: usize,
    gx0: usize,
    gx1: usize,
    gy0: usize,
    gy1: usize,
}

impl TileGeom {
    fn new(dim: Dim3, r: usize, c: usize, ox0: usize, ox1: usize, oy0: usize, oy1: usize) -> Self {
        let h = r * c;
        Self {
            dim,
            r,
            c,
            gx0: ox0.saturating_sub(h),
            gx1: (ox1 + h).min(dim.nx),
            gy0: oy0.saturating_sub(h),
            gy1: (oy1 + h).min(dim.ny),
        }
    }

    fn lx(&self) -> usize {
        self.gx1 - self.gx0
    }
    fn ly(&self) -> usize {
        self.gy1 - self.gy0
    }

    /// Global X compute range for level `t` (1-based): shrinks by `R` per
    /// level from loaded edges, except at grid faces where the Dirichlet
    /// rim is fixed at `R`.
    fn compute_x(&self, t: usize) -> Range<usize> {
        let lo = if self.gx0 == 0 {
            self.r
        } else {
            self.gx0 + self.r * t
        };
        let hi = if self.gx1 == self.dim.nx {
            self.dim.nx - self.r
        } else {
            self.gx1.saturating_sub(self.r * t)
        };
        lo..hi.max(lo)
    }

    /// Global Y compute range for level `t`.
    fn compute_y(&self, t: usize) -> Range<usize> {
        let lo = if self.gy0 == 0 {
            self.r
        } else {
            self.gy0 + self.r * t
        };
        let hi = if self.gy1 == self.dim.ny {
            self.dim.ny - self.r
        } else {
            self.gy1.saturating_sub(self.r * t)
        };
        lo..hi.max(lo)
    }

    /// Whether the final level commits anything (owned ∩ interior).
    pub(crate) fn has_commit(&self) -> bool {
        !self.compute_x(self.c).is_empty() && !self.compute_y(self.c).is_empty()
    }

    /// Interior Z planes.
    fn interior_z(&self) -> Range<usize> {
        self.r..self.dim.nz - self.r
    }

    /// Analytic work/traffic accounting for this tile × chunk.
    pub(crate) fn stats<T: Real>(&self) -> SweepStats {
        let nz_int = self.interior_z().len() as u64;
        let mut updates = 0u64;
        for t in 1..=self.c {
            updates += (self.compute_x(t).len() * self.compute_y(t).len()) as u64 * nz_int;
        }
        let commit = (self.compute_x(self.c).len() * self.compute_y(self.c).len()) as u64 * nz_int;
        let e = elem_bytes::<T>();
        SweepStats {
            stencil_updates: updates,
            committed_points: commit * self.c as u64,
            // Level 1 streams the loaded footprint in once per chunk; the
            // committed region streams out (with write-allocate).
            dram_bytes_read: (self.lx() * self.ly() * self.dim.nz) as u64 * e + commit * e,
            dram_bytes_written: commit * e,
        }
    }
}

/// Builds the tile geometry (used by the scheduling-ablation executor).
pub(crate) fn tile_geometry(
    dim: Dim3,
    r: usize,
    c: usize,
    ox0: usize,
    ox1: usize,
    oy0: usize,
    oy1: usize,
) -> TileGeom {
    TileGeom::new(dim, r, c, ox0, ox1, oy0, oy1)
}

/// Runs one tile's pipeline entirely on the calling thread (no barriers) —
/// the building block of the tile-level-parallel scheduling ablation.
pub(crate) fn tile_pipeline_serial<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    src: &Grid3<T>,
    dst_view: &SharedSlice<'_, T>,
    dst_dim: Dim3,
    geom: &TileGeom,
) {
    if !geom.has_commit() {
        return;
    }
    let (r, c) = (geom.r, geom.c);
    let (lx, ly) = (geom.lx(), geom.ly());
    let slots = (2 * r + 2).max(3 * r + 1);
    let mut rings: Vec<PlaneRing<T>> = (1..c).map(|_| PlaneRing::new(slots, lx * ly)).collect();
    let ring_views: Vec<RingView<'_, T>> =
        rings.iter_mut().map(|rg| RingView::new(rg, lx)).collect();
    let my_rows = 0..ly;
    let mut planes_buf: Vec<&[T]> = Vec::with_capacity(2 * r + 1);
    let outer_steps = geom.dim.nz + 2 * r * (c - 1);
    for s in 0..outer_steps {
        for t in 1..=c {
            let lag = 2 * r * (t - 1);
            if s < lag {
                continue;
            }
            let z = s - lag;
            if z < geom.dim.nz {
                process_level(
                    kernel,
                    src,
                    dst_view,
                    dst_dim,
                    geom,
                    &ring_views,
                    t,
                    z,
                    &my_rows,
                    &mut planes_buf,
                );
            }
        }
        planes_buf.clear();
    }
}

/// View over one time level's plane ring shared across the team.
struct RingView<'a, T> {
    view: SharedSlice<'a, T>,
    slots: usize,
    plane_len: usize,
    lx: usize,
}

impl<'a, T: Real> RingView<'a, T> {
    fn new(ring: &'a mut PlaneRing<T>, lx: usize) -> Self {
        let slots = ring.slots();
        let plane_len = ring.plane_len();
        Self {
            view: SharedSlice::new(ring.as_mut_slice()),
            slots,
            plane_len,
            lx,
        }
    }

    fn base(&self, z: usize) -> usize {
        (z % self.slots) * self.plane_len
    }

    /// Shared read of the plane stored for global Z index `z`.
    ///
    /// # Safety
    /// No thread may be writing this plane concurrently (guaranteed by the
    /// pipeline's slot-disjointness and per-step barriers).
    unsafe fn plane(&self, z: usize) -> &[T] {
        // SAFETY: forwarded contract.
        unsafe { self.view.slice(self.base(z), self.plane_len) }
    }

    /// Mutable access to local columns `[x0, x1)` of local row `row` of the
    /// plane for `z`.
    ///
    /// # Safety
    /// The caller must own this row range exclusively for the current step
    /// (guaranteed by the per-thread row partition).
    // Interior mutability through SharedSlice; exclusivity is the contract.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, z: usize, row: usize, x0: usize, x1: usize) -> &mut [T] {
        // SAFETY: forwarded contract.
        unsafe {
            self.view
                .slice_mut(self.base(z) + row * self.lx + x0, x1 - x0)
        }
    }
}

/// Poisons the barrier if dropped while armed — i.e. during the unwind of
/// a panicking team member — so the surviving members drain at their next
/// [`SpinBarrier::checked_wait`] episode instead of spinning forever on an
/// arrival that will never come.
struct PoisonOnPanic<'a> {
    barrier: &'a SpinBarrier,
    armed: bool,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.barrier.poison();
        }
    }
}

/// Runs the full pipeline for one tile × chunk on the team.
///
/// Failure paths: a member panic surfaces as
/// [`SyncError::TeamPanicked`]; a poisoned/timed-out barrier surfaces as
/// the first [`SyncError`] any member observed. Either way every member
/// has finished (drained cooperatively) before this returns.
#[allow(clippy::too_many_arguments)]
fn tile_pipeline<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    src: &Grid3<T>,
    dst_view: &SharedSlice<T>,
    dst_dim: Dim3,
    geom: &TileGeom,
    team: &ThreadTeam,
    barrier: &SpinBarrier,
    deadline: Option<Duration>,
    instr: &Instrument,
    tracer: &Tracer,
) -> Result<(), ExecError> {
    let (r, c) = (geom.r, geom.c);
    let (lx, ly) = (geom.lx(), geom.ly());
    // max(2R+2, 3R+1) slots: see module docs.
    let slots = (2 * r + 2).max(3 * r + 1);
    let mut rings: Vec<PlaneRing<T>> = (1..c).map(|_| PlaneRing::new(slots, lx * ly)).collect();
    let ring_views: Vec<RingView<'_, T>> =
        rings.iter_mut().map(|rg| RingView::new(rg, lx)).collect();

    let n_threads = team.threads();
    let outer_steps = geom.dim.nz + 2 * r * (c - 1);
    let first_err: Mutex<Option<SyncError>> = Mutex::new(None);

    let run_res = team.try_run(|tid| {
        let mut guard = PoisonOnPanic {
            barrier,
            armed: true,
        };
        // The flexible load-balancing scheme: this thread owns a fixed band
        // of local rows at every level and plane.
        let my_rows = even_range(ly, n_threads, tid);
        let mut planes_buf: Vec<&[T]> = Vec::with_capacity(2 * r + 1);
        // `None` when instrumentation is disabled: the loop then performs
        // no clock reads at all (the zero-cost contract).
        let mut compute_start = instr.now();
        for s in 0..outer_steps {
            faults::fault_point(tid, s);
            for t in 1..=c {
                let lag = 2 * r * (t - 1);
                if s < lag {
                    continue;
                }
                let z = s - lag;
                if z < geom.dim.nz {
                    let span0 = tracer.now_ns();
                    process_level(
                        kernel,
                        src,
                        dst_view,
                        dst_dim,
                        geom,
                        &ring_views,
                        t,
                        z,
                        &my_rows,
                        &mut planes_buf,
                    );
                    if let Some(t0) = span0 {
                        let t1 = tracer.now_ns().unwrap_or(t0);
                        let kind = TraceEventKind::Plane {
                            z: z as u32,
                            level: t as u32,
                        };
                        tracer.record(tid, kind, t0, t1);
                    }
                }
            }
            planes_buf.clear();
            if let Some(t0) = compute_start {
                instr.add_compute_ns(tid, t0.elapsed().as_nanos() as u64);
            }
            let bar0 = tracer.now_ns();
            let wait = barrier.checked_wait_instrumented(deadline, instr, tid);
            if let Some(t0) = bar0 {
                let t1 = tracer.now_ns().unwrap_or(t0);
                tracer.record(tid, TraceEventKind::Barrier { step: s as u32 }, t0, t1);
            }
            compute_start = instr.now();
            if let Err(e) = wait {
                // Cooperative exit: the barrier is poisoned (by a panicked
                // peer's guard or by a timeout), so every member breaks
                // out here and the generation drains in bounded time.
                first_err.lock().unwrap().get_or_insert(e);
                break;
            }
        }
        guard.armed = false;
    });
    run_res.map_err(ExecError::from)?;
    match first_err.into_inner().unwrap() {
        Some(e) => Err(e.into()),
        None => Ok(()),
    }
}

/// Executes level `t`'s work for global plane `z`, restricted to this
/// thread's local rows.
#[allow(clippy::too_many_arguments)]
fn process_level<'a, T: Real, K: StencilKernel<T>>(
    kernel: &K,
    src: &'a Grid3<T>,
    dst_view: &SharedSlice<T>,
    dst_dim: Dim3,
    geom: &TileGeom,
    rings: &'a [RingView<'a, T>],
    t: usize,
    z: usize,
    my_rows: &Range<usize>,
    planes_buf: &mut Vec<&'a [T]>,
) {
    let (r, c) = (geom.r, geom.c);
    let dim = geom.dim;
    let is_final = t == c;
    let z_boundary = z < r || z >= dim.nz - r;

    if z_boundary {
        if !is_final {
            // Dirichlet Z plane: intermediate levels must hold it so the
            // next level's reads see boundary values; the final level's
            // destination grid already carries them.
            for row in my_rows.clone() {
                let y = geom.gy0 + row;
                // SAFETY: this thread owns `row` of every ring plane.
                let dst = unsafe { rings[t - 1].row_mut(z, row, 0, geom.lx()) };
                dst.copy_from_slice(&src.row(y, z)[geom.gx0..geom.gx1]);
            }
        }
        return;
    }

    let xs = geom.compute_x(t);
    let ys = geom.compute_y(t);

    // Stencil rows this thread owns.
    let row_lo = ys.start.max(geom.gy0 + my_rows.start);
    let row_hi = ys.end.min(geom.gy0 + my_rows.end);

    if row_lo < row_hi && !xs.is_empty() {
        planes_buf.clear();
        if t == 1 {
            // Level 1 reads the source grid directly (global stride).
            for zz in z - r..=z + r {
                planes_buf.push(src.plane(zz));
            }
        } else {
            // Deeper levels read the previous level's ring (local stride).
            for zz in z - r..=z + r {
                // SAFETY: those planes were completed at earlier outer
                // steps (barrier-separated) and their slots are disjoint
                // from any plane written in this step.
                planes_buf.push(unsafe { rings[t - 2].plane(zz) });
            }
        }
        let (nx, x_off, y_off) = if t == 1 {
            (dim.nx, 0usize, 0usize)
        } else {
            (geom.lx(), geom.gx0, geom.gy0)
        };

        for y in row_lo..row_hi {
            let out: &mut [T] = if is_final {
                // SAFETY: this thread owns row `y` of the destination.
                unsafe { dst_view.slice_mut(dst_dim.idx(xs.start, y, z), xs.len()) }
            } else {
                // SAFETY: this thread owns this local row of the ring.
                unsafe {
                    rings[t - 1].row_mut(z, y - geom.gy0, xs.start - geom.gx0, xs.end - geom.gx0)
                }
            };
            kernel.apply_row(
                planes_buf,
                nx,
                y - y_off,
                xs.start - x_off..xs.end - x_off,
                out,
            );

            if !is_final {
                // Dirichlet X rim inside the loaded footprint, so deeper
                // levels read correct boundary values.
                if geom.gx0 == 0 && r > 0 {
                    // SAFETY: same row ownership as above.
                    let rim = unsafe { rings[t - 1].row_mut(z, y - geom.gy0, 0, r) };
                    rim.copy_from_slice(&src.row(y, z)[0..r]);
                }
                if geom.gx1 == dim.nx && r > 0 {
                    let lx = geom.lx();
                    // SAFETY: same row ownership as above.
                    let rim = unsafe { rings[t - 1].row_mut(z, y - geom.gy0, lx - r, lx) };
                    rim.copy_from_slice(&src.row(y, z)[dim.nx - r..dim.nx]);
                }
            }
        }
    }

    if !is_final {
        // Dirichlet Y rows (grid faces) inside the loaded footprint.
        for row in my_rows.clone() {
            let y = geom.gy0 + row;
            if y < r || y >= dim.ny - r {
                // SAFETY: this thread owns `row` of every ring plane.
                let dst = unsafe { rings[t - 1].row_mut(z, row, 0, geom.lx()) };
                dst.copy_from_slice(&src.row(y, z)[geom.gx0..geom.gx1]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::reference_sweep;
    use crate::kernel::{GenericStar, SevenPoint, TwentySevenPoint};
    use crate::planner::kappa_35d;

    fn init<T: Real>(d: Dim3) -> DoubleGrid<T> {
        DoubleGrid::from_initial(Grid3::from_fn(d, |x, y, z| {
            T::from_f64((((x * 17 + y * 23 + z * 29) % 31) as f64) * 0.125 - 1.5)
        }))
    }

    #[test]
    fn serial_matches_reference_across_tilings() {
        let d = Dim3::new(14, 12, 10);
        let k = SevenPoint::new(0.3f32, 0.1);
        for steps in [1usize, 2, 3, 4, 6] {
            let mut want = init::<f32>(d);
            reference_sweep(&k, &mut want, steps);
            for (tx, ty, dt) in [
                (6usize, 6usize, 2usize),
                (14, 12, 2),
                (5, 7, 3),
                (4, 4, 1),
                (14, 12, 4),
                (3, 3, 2),
            ] {
                let mut got = init::<f32>(d);
                blocked35d_sweep(&k, &mut got, steps, Blocking35::new(tx, ty, dt));
                assert_eq!(
                    got.src().as_slice(),
                    want.src().as_slice(),
                    "steps={steps} tile={tx}x{ty} dimT={dt}"
                );
            }
        }
    }

    #[test]
    fn serial_matches_reference_f64_27pt() {
        let d = Dim3::cube(11);
        let k = TwentySevenPoint::<f64>::smoothing();
        let mut want = init::<f64>(d);
        reference_sweep(&k, &mut want, 4);
        let mut got = init::<f64>(d);
        blocked35d_sweep(&k, &mut got, 4, Blocking35::new(5, 6, 2));
        assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    #[test]
    fn serial_matches_reference_radius_two() {
        // R = 2 exercises the 3R+1 ring-capacity generalization.
        let d = Dim3::cube(16);
        let k = GenericStar::<f64>::smoothing(2);
        for steps in [2usize, 4, 5] {
            let mut want = init::<f64>(d);
            reference_sweep(&k, &mut want, steps);
            let mut got = init::<f64>(d);
            blocked35d_sweep(&k, &mut got, steps, Blocking35::new(7, 9, 2));
            assert_eq!(got.src().as_slice(), want.src().as_slice(), "steps={steps}");
        }
    }

    #[test]
    fn parallel_matches_reference_for_every_team_size() {
        let d = Dim3::new(13, 11, 9);
        let k = SevenPoint::new(0.3f32, 0.1);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, 4);
        for threads in [1usize, 2, 3, 4, 7] {
            let team = ThreadTeam::new(threads);
            let mut got = init::<f32>(d);
            parallel35d_sweep(&k, &mut got, 4, Blocking35::new(6, 5, 2), &team);
            assert_eq!(
                got.src().as_slice(),
                want.src().as_slice(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_matches_with_partial_rows() {
        // More threads than tile rows: the partition degrades gracefully
        // (some members idle), results stay exact.
        let d = Dim3::cube(8);
        let k = SevenPoint::new(0.25f64, 0.125);
        let mut want = init::<f64>(d);
        reference_sweep(&k, &mut want, 3);
        let team = ThreadTeam::new(6);
        let mut got = init::<f64>(d);
        parallel35d_sweep(&k, &mut got, 3, Blocking35::new(4, 2, 3), &team);
        assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    #[test]
    fn temporal_only_is_ghost_free() {
        let d = Dim3::cube(12);
        let k = SevenPoint::new(0.3f32, 0.1);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, 4);
        let mut got = init::<f32>(d);
        let stats = temporal_sweep(&k, &mut got, 4, 2);
        assert_eq!(got.src().as_slice(), want.src().as_slice());
        // Whole-plane tiles ⇒ every level computes the full interior ⇒ no
        // recompute overestimation.
        assert!((stats.overestimation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_and_recompute_track_kappa_35d() {
        let (tx, dt, r) = (16usize, 2usize, 1usize);
        let d = Dim3::new(tx * 3, tx * 3, 12);
        let k = SevenPoint::new(0.3f64, 0.1);
        let mut g = init::<f64>(d);
        let stats = blocked35d_sweep(&k, &mut g, dt, Blocking35::new(tx, tx, dt));
        let loaded = tx + 2 * r * dt;
        let kappa = kappa_35d(r, dt, loaded, loaded);

        // Bandwidth: loaded footprints per chunk vs one-load-per-point.
        let e = 8u64;
        let commit_bytes = stats.committed_points / dt as u64 * e;
        let measured_kappa =
            (stats.dram_bytes_read - commit_bytes) as f64 / (d.len() as u64 * e) as f64;
        assert!(
            measured_kappa <= kappa * 1.0001 && measured_kappa > 0.6 * kappa,
            "traffic {measured_kappa} vs kappa {kappa}"
        );

        // Compute: ghost recomputation is visible but bounded by κ.
        let over = stats.overestimation();
        assert!(
            over > 1.02 && over <= kappa,
            "recompute {over} vs kappa {kappa}"
        );
    }

    #[test]
    fn dram_traffic_reduces_by_dim_t() {
        // The headline claim: 3.5-D traffic ≈ (no-blocking traffic) × κ/dimT.
        let d = Dim3::cube(24);
        let k = SevenPoint::new(0.3f32, 0.1);
        let steps = 4usize;
        let mut a = init::<f32>(d);
        let naive = reference_sweep(&k, &mut a, steps);
        let mut b = init::<f32>(d);
        let blocked = blocked35d_sweep(&k, &mut b, steps, Blocking35::new(12, 12, 2));
        let ratio = naive.dram_bytes() as f64 / blocked.dram_bytes() as f64;
        // dimT = 2 with modest κ: expect between 1.4X and 2X reduction.
        assert!(ratio > 1.4 && ratio <= 2.2, "ratio {ratio}");
    }

    #[test]
    fn zero_interior_grid_is_no_op() {
        let d = Dim3::new(5, 2, 5);
        let k = SevenPoint::new(0.3f32, 0.1);
        let mut g = init::<f32>(d);
        let before = g.src().clone();
        let stats = blocked35d_sweep(&k, &mut g, 3, Blocking35::new(4, 4, 2));
        assert_eq!(g.src().as_slice(), before.as_slice());
        assert_eq!(stats, SweepStats::default());
    }

    #[test]
    fn instrumented_sweep_is_bit_exact_and_records_timing() {
        let d = Dim3::cube(12);
        let k = SevenPoint::new(0.3f32, 0.1);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, 4);
        let team = ThreadTeam::new(3);
        let instr = Instrument::enabled(team.threads());
        let mut got = init::<f32>(d);
        let stats = try_parallel35d_sweep_instrumented(
            &k,
            &mut got,
            4,
            Blocking35::new(6, 6, 2),
            &team,
            None,
            &instr,
        )
        .unwrap();
        assert_eq!(got.src().as_slice(), want.src().as_slice());
        assert!(stats.committed_points > 0);
        let timing = instr.timing();
        assert_eq!(timing.per_thread.len(), 3);
        // Every member passed through barriers and compute regions.
        assert!(timing.total_compute_ns() > 0);
        let share = timing.barrier_share();
        assert!((0.0..=1.0).contains(&share), "share {share}");
    }

    #[test]
    fn disabled_instrument_collects_nothing() {
        let d = Dim3::cube(8);
        let k = SevenPoint::new(0.3f32, 0.1);
        let team = ThreadTeam::new(2);
        let instr = Instrument::disabled();
        let mut g = init::<f32>(d);
        try_parallel35d_sweep_instrumented(
            &k,
            &mut g,
            2,
            Blocking35::new(4, 4, 2),
            &team,
            None,
            &instr,
        )
        .unwrap();
        assert!(instr.timing().per_thread.is_empty());
        assert_eq!(instr.timing().barrier_share(), 0.0);
    }

    #[test]
    fn traced_sweep_is_bit_exact_and_spans_every_plane_level() {
        use threefive_sync::TraceEventKind;
        let d = Dim3::cube(12);
        let k = SevenPoint::new(0.3f32, 0.1);
        let (steps, dim_t, threads) = (4usize, 2usize, 2usize);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, steps);
        let team = ThreadTeam::new(threads);
        let instr = Instrument::enabled(threads);
        let tracer = Tracer::enabled(threads);
        let mut got = init::<f32>(d);
        try_parallel35d_sweep_traced(
            &k,
            &mut got,
            steps,
            Blocking35::new(d.nx, d.ny, dim_t), // one tile: exact span accounting
            &team,
            None,
            &instr,
            &tracer,
        )
        .unwrap();
        assert_eq!(got.src().as_slice(), want.src().as_slice());
        let snap = tracer.snapshot();
        assert_eq!(snap.threads.len(), threads);
        assert_eq!(snap.total_dropped(), 0);
        let chunks = steps / dim_t;
        let outer = d.nz + 2 * (dim_t - 1);
        for tt in &snap.threads {
            let planes = tt
                .events
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::Plane { .. }))
                .count();
            // One span per (plane, time level) per chunk on every thread.
            assert_eq!(planes, d.nz * dim_t * chunks);
            let barriers = tt
                .events
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::Barrier { .. }))
                .count();
            assert_eq!(barriers, outer * chunks);
            // Recording order gives monotonic per-thread start times.
            let starts: Vec<u64> = tt.events.iter().map(|e| e.start_ns).collect();
            assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        }
        // The instrument now also carries the wait histogram.
        assert_eq!(
            instr.timing().wait_hist.total() as usize,
            outer * chunks * threads
        );
    }

    #[test]
    fn disabled_tracer_keeps_sweep_bit_identical() {
        let d = Dim3::new(11, 9, 10);
        let k = SevenPoint::new(0.3f64, 0.1);
        let team = ThreadTeam::new(3);
        let b = Blocking35::new(5, 6, 2);
        let mut plain = init::<f64>(d);
        try_parallel35d_sweep(&k, &mut plain, 4, b, &team, None).unwrap();
        let mut traced = init::<f64>(d);
        let tracer = Tracer::disabled();
        try_parallel35d_sweep_traced(
            &k,
            &mut traced,
            4,
            b,
            &team,
            None,
            &Instrument::disabled(),
            &tracer,
        )
        .unwrap();
        assert_eq!(plain.src().as_slice(), traced.src().as_slice());
        assert_eq!(tracer.snapshot().total_events(), 0);
    }

    #[test]
    fn steps_not_multiple_of_dim_t() {
        let d = Dim3::cube(10);
        let k = SevenPoint::new(0.3f64, 0.1);
        for steps in 1..=7 {
            let mut want = init::<f64>(d);
            reference_sweep(&k, &mut want, steps);
            let mut got = init::<f64>(d);
            blocked35d_sweep(&k, &mut got, steps, Blocking35::new(5, 5, 3));
            assert_eq!(got.src().as_slice(), want.src().as_slice(), "steps={steps}");
        }
    }
}
