//! The *alternative* parallelization the paper argues against (§II,
//! §V-D): instead of all threads cooperating on every XY tile (one barrier
//! per Z step, identical DRAM traffic per thread), each thread owns whole
//! tiles and runs its own serial pipeline over them.
//!
//! Pros: no intra-tile barriers at all. Cons — exactly the ones the paper
//! attributes to wavefront-style schemes: the effective working set is one
//! ring set *per thread* (threads × the cache budget of Eq. 1), and when
//! the tile count isn't a multiple of the thread count the tail imbalance
//! wastes whole tile-times. This executor exists so the trade-off can be
//! measured (`cargo bench -p threefive-bench --bench scheduling`).

use std::sync::atomic::{AtomicUsize, Ordering};

use threefive_grid::{DoubleGrid, Real};
use threefive_sync::{SharedSlice, ThreadTeam};

use crate::exec::engine35::{tile_stream_serial, Blocking35, BoundaryPolicy, TileGeom};
use crate::exec::has_interior;
use crate::exec::pipeline35::StencilPlanes;
use crate::kernel::StencilKernel;
use crate::stats::SweepStats;

/// 3.5-D blocked sweep with **tile-level** parallelism: a work queue of
/// tiles drained by the team, each tile processed serially by one thread.
///
/// Bit-exact with [`reference_sweep`](crate::exec::reference_sweep) (tiles
/// are independent within a chunk), but see the module docs for why the
/// paper prefers [`parallel35d_sweep`](crate::exec::parallel35d_sweep).
pub fn tile_parallel35d_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    b: Blocking35,
    team: &ThreadTeam,
) -> SweepStats {
    let dim = grids.dim();
    let r = kernel.radius();
    if !has_interior(dim, r) {
        return SweepStats::default();
    }
    let mut stats = SweepStats::default();
    let mut remaining = steps;
    while remaining > 0 {
        let chunk = remaining.min(b.dim_t);
        // Enumerate owned tiles.
        let mut tiles = Vec::new();
        let mut oy = 0usize;
        while oy < dim.ny {
            let oy1 = (oy + b.dim_y).min(dim.ny);
            let mut ox = 0usize;
            while ox < dim.nx {
                let ox1 = (ox + b.dim_x).min(dim.nx);
                tiles.push((ox, ox1, oy, oy1));
                ox = ox1;
            }
            oy = oy1;
        }

        let (src, dst) = grids.pair_mut();
        let dst_view = SharedSlice::new(dst.as_mut_slice());
        let planes = StencilPlanes {
            kernel,
            src,
            dst: &dst_view,
        };
        let next = AtomicUsize::new(0);
        let sched = b.schedule.schedule();
        // Per-tile destination rows are disjoint across tiles, so a simple
        // work queue is race-free; each thread runs a serial pipeline.
        team.run(|_tid| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&(ox, ox1, oy, oy1)) = tiles.get(i) else {
                break;
            };
            let geom = TileGeom::new(
                dim,
                r,
                chunk,
                BoundaryPolicy::DirichletRim,
                ox..ox1,
                oy..oy1,
            );
            tile_stream_serial(&planes, &geom, sched);
        });
        for &(ox, ox1, oy, oy1) in &tiles {
            let geom = TileGeom::new(
                dim,
                r,
                chunk,
                BoundaryPolicy::DirichletRim,
                ox..ox1,
                oy..oy1,
            );
            if geom.has_commit() {
                stats = stats + geom.stats::<T>();
            }
        }
        grids.swap();
        remaining -= chunk;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::reference_sweep;
    use crate::kernel::SevenPoint;
    use threefive_grid::{Dim3, Grid3};

    fn init(d: Dim3) -> DoubleGrid<f32> {
        DoubleGrid::from_initial(Grid3::from_fn(d, |x, y, z| {
            ((x * 19 + y * 11 + z * 3) % 13) as f32 * 0.2 - 1.0
        }))
    }

    #[test]
    fn tile_parallel_matches_reference() {
        let d = Dim3::new(20, 17, 11);
        let k = SevenPoint::new(0.3f32, 0.1);
        for steps in [1usize, 3, 5] {
            let mut want = init(d);
            reference_sweep(&k, &mut want, steps);
            for threads in [1usize, 2, 4] {
                let team = ThreadTeam::new(threads);
                let mut got = init(d);
                tile_parallel35d_sweep(&k, &mut got, steps, Blocking35::new(6, 5, 2), &team);
                assert_eq!(
                    got.src().as_slice(),
                    want.src().as_slice(),
                    "steps={steps} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn tile_parallel_matches_row_parallel() {
        use crate::exec::parallel35d_sweep;
        let d = Dim3::cube(18);
        let k = SevenPoint::new(0.25f32, 0.125);
        let b = Blocking35::new(7, 9, 3);
        let team = ThreadTeam::new(3);
        let mut a = init(d);
        parallel35d_sweep(&k, &mut a, 6, b, &team);
        let mut c = init(d);
        tile_parallel35d_sweep(&k, &mut c, 6, b, &team);
        assert_eq!(a.src().as_slice(), c.src().as_slice());
    }

    #[test]
    fn stats_match_row_parallel_executor() {
        use crate::exec::blocked35d_sweep;
        let d = Dim3::cube(16);
        let k = SevenPoint::new(0.3f64, 0.1);
        let b = Blocking35::new(8, 8, 2);
        let team = ThreadTeam::new(2);
        let mut a = init_f64(d);
        let s1 = blocked35d_sweep(&k, &mut a, 4, b);
        let mut c = init_f64(d);
        let s2 = tile_parallel35d_sweep(&k, &mut c, 4, b, &team);
        assert_eq!(s1, s2, "same tiling must report the same work/traffic");
    }

    fn init_f64(d: Dim3) -> DoubleGrid<f64> {
        DoubleGrid::from_initial(Grid3::from_fn(d, |x, y, z| {
            ((x * 19 + y * 11 + z * 3) % 13) as f64 * 0.2 - 1.0
        }))
    }
}
