//! No-blocking sweeps: the scalar reference and its SIMD row variant.

use threefive_grid::{DoubleGrid, Real};

use crate::exec::{elem_bytes, has_interior};
use crate::kernel::StencilKernel;
use crate::stats::SweepStats;

/// Scalar, no-blocking Jacobi sweep — the ground truth every other
/// executor is verified against.
///
/// Traversal is a plain `z, y, x` loop over the interior using
/// [`StencilKernel::apply_point`]. Result ends in `grids.src()`.
pub fn reference_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
) -> SweepStats {
    let dim = grids.dim();
    let r = kernel.radius();
    if !has_interior(dim, r) {
        return SweepStats::default();
    }
    let interior = dim.interior_region(r);
    for _ in 0..steps {
        let (src, dst) = grids.pair_mut();
        for z in interior.zs() {
            for y in interior.ys() {
                for x in interior.xs() {
                    let v = kernel.apply_point(src, x, y, z);
                    dst.set(x, y, z, v);
                }
            }
        }
        grids.swap();
    }
    no_blocking_stats::<T>(interior.len() as u64, dim.len() as u64, steps as u64)
}

/// No-blocking sweep using the kernel's row (SIMD) application — the
/// paper's "+SIMD, no blocking" rung: data-level parallelism only.
///
/// Result ends in `grids.src()`; bit-exact with [`reference_sweep`].
pub fn simd_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
) -> SweepStats {
    let dim = grids.dim();
    let r = kernel.radius();
    if !has_interior(dim, r) {
        return SweepStats::default();
    }
    let interior = dim.interior_region(r);
    let nx = dim.nx;
    for _ in 0..steps {
        let (src, dst) = grids.pair_mut();
        for z in interior.zs() {
            let planes: Vec<&[T]> = (z - r..=z + r).map(|zz| src.plane(zz)).collect();
            for y in interior.ys() {
                let out = &mut dst.row_mut(y, z)[interior.xs()];
                kernel.apply_row(&planes, nx, y, interior.xs(), out);
            }
        }
        grids.swap();
    }
    no_blocking_stats::<T>(interior.len() as u64, dim.len() as u64, steps as u64)
}

/// Modeled traffic for no-blocking sweeps on a cached machine: every time
/// step streams the whole source grid in and the whole destination out
/// (write-allocate: each store also fetches the line first).
fn no_blocking_stats<T: Real>(interior: u64, total: u64, steps: u64) -> SweepStats {
    let e = elem_bytes::<T>();
    SweepStats {
        stencil_updates: interior * steps,
        committed_points: interior * steps,
        dram_bytes_read: steps * total * e * 2, // source + write-allocate
        dram_bytes_written: steps * total * e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{GenericStar, SevenPoint, TwentySevenPoint};
    use threefive_grid::{Dim3, Grid3};

    fn init<T: Real>(d: Dim3) -> DoubleGrid<T> {
        DoubleGrid::from_initial(Grid3::from_fn(d, |x, y, z| {
            T::from_f64((((x * 13 + y * 7 + z * 3) % 17) as f64) * 0.125 - 1.0)
        }))
    }

    #[test]
    fn one_step_matches_manual_stencil() {
        let d = Dim3::cube(5);
        let k = SevenPoint::new(0.5f64, 0.1);
        let mut g = init::<f64>(d);
        let before = g.src().clone();
        reference_sweep(&k, &mut g, 1);
        // Interior point check against a hand-rolled formula.
        let (x, y, z) = (2, 2, 2);
        let sum = before.get(1, 2, 2)
            + before.get(3, 2, 2)
            + before.get(2, 1, 2)
            + before.get(2, 3, 2)
            + before.get(2, 2, 1)
            + before.get(2, 2, 3);
        let expect = 0.5 * before.get(x, y, z) + 0.1 * sum;
        assert!((g.src().get(x, y, z) - expect).abs() < 1e-15);
        // Boundary is Dirichlet.
        assert_eq!(g.src().get(0, 2, 2), before.get(0, 2, 2));
        assert_eq!(g.src().get(4, 4, 4), before.get(4, 4, 4));
    }

    #[test]
    fn simd_sweep_is_bit_exact_with_reference_f32() {
        let d = Dim3::new(19, 11, 7);
        let k = SevenPoint::new(0.45f32, 0.09);
        let mut a = init::<f32>(d);
        let mut b = init::<f32>(d);
        reference_sweep(&k, &mut a, 4);
        simd_sweep(&k, &mut b, 4);
        assert_eq!(a.src().as_slice(), b.src().as_slice());
    }

    #[test]
    fn simd_sweep_is_bit_exact_with_reference_f64() {
        let d = Dim3::new(10, 13, 6);
        let k = SevenPoint::new(0.45f64, 0.09);
        let mut a = init::<f64>(d);
        let mut b = init::<f64>(d);
        reference_sweep(&k, &mut a, 3);
        simd_sweep(&k, &mut b, 3);
        assert_eq!(a.src().as_slice(), b.src().as_slice());
    }

    #[test]
    fn simd_sweep_matches_for_27_point_and_star() {
        let d = Dim3::cube(9);
        let k27 = TwentySevenPoint::<f32>::smoothing();
        let mut a = init::<f32>(d);
        let mut b = init::<f32>(d);
        reference_sweep(&k27, &mut a, 2);
        simd_sweep(&k27, &mut b, 2);
        assert_eq!(a.src().as_slice(), b.src().as_slice());

        let star = GenericStar::<f64>::smoothing(2);
        let mut a = init::<f64>(d);
        let mut b = init::<f64>(d);
        reference_sweep(&star, &mut a, 2);
        simd_sweep(&star, &mut b, 2);
        assert_eq!(a.src().as_slice(), b.src().as_slice());
    }

    #[test]
    fn zero_steps_is_identity() {
        let d = Dim3::cube(6);
        let k = SevenPoint::new(0.5f32, 0.1);
        let mut g = init::<f32>(d);
        let before = g.src().clone();
        let stats = reference_sweep(&k, &mut g, 0);
        assert_eq!(g.src().as_slice(), before.as_slice());
        assert_eq!(stats.stencil_updates, 0);
    }

    #[test]
    fn degenerate_grid_is_a_no_op() {
        let d = Dim3::new(2, 5, 5); // no interior at R = 1
        let k = SevenPoint::new(0.5f64, 0.1);
        let mut g = init::<f64>(d);
        let before = g.src().clone();
        let stats = reference_sweep(&k, &mut g, 3);
        assert_eq!(g.src().as_slice(), before.as_slice());
        assert_eq!(stats, SweepStats::default());
    }

    #[test]
    fn stats_count_interior_points_per_step() {
        let d = Dim3::cube(6);
        let k = SevenPoint::new(0.5f32, 0.1);
        let mut g = init::<f32>(d);
        let stats = reference_sweep(&k, &mut g, 3);
        assert_eq!(stats.stencil_updates, 4 * 4 * 4 * 3);
        assert_eq!(stats.committed_points, 4 * 4 * 4 * 3);
        assert!((stats.overestimation() - 1.0).abs() < 1e-12);
        // Modeled traffic: 3 bytes-moved per point per step in f32.
        assert_eq!(stats.dram_bytes(), 3 * 216 * 4 * 3);
    }

    #[test]
    fn uniform_field_is_fixed_point_of_heat_kernel() {
        let d = Dim3::cube(8);
        let k = SevenPoint::<f64>::heat(1.0 / 6.0);
        let mut g = DoubleGrid::from_initial(Grid3::splat(d, 2.5));
        reference_sweep(&k, &mut g, 10);
        for v in g.src().as_slice() {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }
}
