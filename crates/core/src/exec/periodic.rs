//! Periodic boundary conditions.
//!
//! The paper's executors hold Dirichlet boundaries; many PDE workloads
//! (turbulence boxes, spectral comparisons) want periodic wrap instead.
//! Rather than thread wrap-around indexing through the pipeline's ghost
//! logic, this module uses the **extended-domain** identity:
//!
//! > running `dim_T` Jacobi steps on a copy of the grid padded with
//! > `h = R·dim_T` wrapped halo layers yields, in the central `N³`
//! > region, exactly the periodic evolution — the padded copy's own
//! > (Dirichlet-held) rim can only corrupt a band of depth `R·dim_T`
//! > from its faces, which never reaches the center.
//!
//! Each chunk therefore: wrap-extends the source grid, runs the ordinary
//! (Dirichlet) 3.5-D executor on the extension, and harvests the center.
//! Correctness rides entirely on machinery that is already verified
//! bit-exactly; the identity itself is tested against a modular-indexing
//! reference sweep below.

use threefive_grid::{Dim3, DoubleGrid, Grid3, Real};
use threefive_sync::ThreadTeam;

use crate::exec::{parallel35d_sweep, Blocking35};
use crate::kernel::StencilKernel;
use crate::stats::SweepStats;

/// Scalar reference sweep with periodic boundaries (modular indexing) —
/// the ground truth for this module.
pub fn reference_sweep_periodic<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
) -> SweepStats {
    let dim = grids.dim();
    let r = kernel.radius();
    let mut updates = 0u64;
    for _ in 0..steps {
        let (src, dst) = grids.pair_mut();
        // Evaluate through a wrap-extended scratch copy so the kernel's
        // `apply_point` (which assumes in-bounds neighbors) can be reused.
        let ext = wrap_extend(src, r);
        for z in 0..dim.nz {
            for y in 0..dim.ny {
                for x in 0..dim.nx {
                    let v = kernel.apply_point(&ext, x + r, y + r, z + r);
                    dst.set(x, y, z, v);
                }
            }
        }
        updates += dim.len() as u64;
        grids.swap();
    }
    SweepStats {
        stencil_updates: updates,
        committed_points: updates,
        ..SweepStats::default()
    }
}

/// Periodic 3.5-D blocked sweep (serial or on a team): wrap-extend per
/// chunk, run the Dirichlet pipeline, harvest the center.
///
/// Bit-exact with [`reference_sweep_periodic`].
pub fn periodic35d_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    b: Blocking35,
    team: Option<&ThreadTeam>,
) -> SweepStats {
    let fallback;
    let team = match team {
        Some(t) => t,
        None => {
            fallback = ThreadTeam::new(1);
            &fallback
        }
    };
    let dim = grids.dim();
    let r = kernel.radius();
    let mut stats = SweepStats::default();
    let mut remaining = steps;
    while remaining > 0 {
        let chunk = remaining.min(b.dim_t);
        let h = r * chunk;
        let ext = wrap_extend(grids.src(), h);
        let mut ext_pair = DoubleGrid::from_initial(ext);
        // The extension must be advanced exactly `chunk` steps in one
        // pipeline pass, so cap the blocking's temporal factor at `chunk`.
        let eb = Blocking35::new(b.dim_x, b.dim_y, chunk);
        stats = stats + parallel35d_sweep(kernel, &mut ext_pair, chunk, eb, team);
        // Harvest the center into our destination, then swap.
        let result = ext_pair.src();
        let dst = grids.dst_mut();
        for z in 0..dim.nz {
            for y in 0..dim.ny {
                let row = &result.row(y + h, z + h)[h..h + dim.nx];
                dst.row_mut(y, z).copy_from_slice(row);
            }
        }
        grids.swap();
        remaining -= chunk;
    }
    stats
}

/// Builds the `(n + 2h)`-cubed wrap-extension of `src`: every cell of the
/// extension holds `src[(coord − h) mod n]`.
pub fn wrap_extend<T: Real>(src: &Grid3<T>, h: usize) -> Grid3<T> {
    let d = src.dim();
    assert!(d.nx > 0 && d.ny > 0 && d.nz > 0, "wrap_extend: empty grid");
    let ext_dim = Dim3::new(d.nx + 2 * h, d.ny + 2 * h, d.nz + 2 * h);
    // (v − h) mod n without signed arithmetic: add enough whole periods.
    let m = |v: usize, n: usize| (v + n * h.div_ceil(n) - h) % n;
    Grid3::from_fn(ext_dim, |x, y, z| {
        src.get(m(x, d.nx), m(y, d.ny), m(z, d.nz))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{GenericStar, SevenPoint};

    fn init<T: Real>(d: Dim3) -> Grid3<T> {
        Grid3::from_fn(d, |x, y, z| {
            T::from_f64((((x * 23 + y * 7 + z * 3) % 29) as f64) * 0.07 - 1.0)
        })
    }

    #[test]
    fn wrap_extend_indexes_modularly() {
        let d = Dim3::new(4, 3, 2);
        let g = Grid3::<f64>::from_fn(d, |x, y, z| (x + 10 * y + 100 * z) as f64);
        let e = wrap_extend(&g, 2);
        assert_eq!(e.dim(), Dim3::new(8, 7, 6));
        // Center equals the original.
        for (x, y, z) in d.full_region().points() {
            assert_eq!(e.get(x + 2, y + 2, z + 2), g.get(x, y, z));
        }
        // Halo wraps: ext(1, 2, 2) is src(-1 mod 4, 0, 0) = src(3, 0, 0).
        assert_eq!(e.get(1, 2, 2), g.get(3, 0, 0));
        // And the far side: ext(6, 2, 2) = src(4 mod 4, 0, 0) = src(0,0,0).
        assert_eq!(e.get(6, 2, 2), g.get(0, 0, 0));
    }

    #[test]
    fn wrap_extend_with_halo_larger_than_grid() {
        let d = Dim3::cube(3);
        let g = Grid3::<f32>::from_fn(d, |x, y, z| (x + 3 * y + 9 * z) as f32);
        let e = wrap_extend(&g, 5); // h > n exercises the modular math
        let m = |v: usize| (v + 18 - 5) % 3; // (v - 5) mod 3
        for (x, y, z) in e.dim().full_region().points() {
            assert_eq!(e.get(x, y, z), g.get(m(x), m(y), m(z)), "({x},{y},{z})");
        }
    }

    #[test]
    fn periodic_reference_conserves_mean_for_heat_kernel() {
        // With periodic boundaries and α + 6β = 1, the total field value is
        // exactly conserved (no boundary losses, unlike Dirichlet).
        let d = Dim3::cube(8);
        let k = SevenPoint::<f64>::heat(0.125);
        let mut g = DoubleGrid::from_initial(init::<f64>(d));
        let before = g.src().total();
        reference_sweep_periodic(&k, &mut g, 10);
        let after = g.src().total();
        assert!((after - before).abs() < 1e-9, "{before} vs {after}");
    }

    #[test]
    fn periodic_pipeline_matches_periodic_reference() {
        let d = Dim3::new(12, 10, 9);
        let k = SevenPoint::new(0.35f32, 0.105);
        for steps in [1usize, 2, 3, 5] {
            let mut want = DoubleGrid::from_initial(init::<f32>(d));
            reference_sweep_periodic(&k, &mut want, steps);
            for (tx, ty, dt) in [(6usize, 5usize, 2usize), (12, 10, 3), (4, 4, 1)] {
                let mut got = DoubleGrid::from_initial(init::<f32>(d));
                periodic35d_sweep(&k, &mut got, steps, Blocking35::new(tx, ty, dt), None);
                assert_eq!(
                    got.src().as_slice(),
                    want.src().as_slice(),
                    "steps={steps} tile={tx}x{ty} dimT={dt}"
                );
            }
        }
    }

    #[test]
    fn periodic_pipeline_matches_on_team_and_radius_two() {
        let d = Dim3::cube(11);
        let k = GenericStar::<f64>::smoothing(2);
        let mut want = DoubleGrid::from_initial(init::<f64>(d));
        reference_sweep_periodic(&k, &mut want, 4);
        let team = ThreadTeam::new(3);
        let mut got = DoubleGrid::from_initial(init::<f64>(d));
        periodic35d_sweep(&k, &mut got, 4, Blocking35::new(5, 6, 2), Some(&team));
        assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    #[test]
    fn periodic_differs_from_dirichlet() {
        // Sanity: the two boundary conditions genuinely diverge.
        use crate::exec::reference_sweep;
        let d = Dim3::cube(8);
        let k = SevenPoint::new(0.4f32, 0.1);
        let mut a = DoubleGrid::from_initial(init::<f32>(d));
        let mut b = DoubleGrid::from_initial(init::<f32>(d));
        reference_sweep(&k, &mut a, 3);
        reference_sweep_periodic(&k, &mut b, 3);
        assert_ne!(a.src().as_slice(), b.src().as_slice());
    }
}
