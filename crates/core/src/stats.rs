//! Analytic per-sweep accounting.
//!
//! Executors report how much work they did and how much DRAM traffic their
//! blocking scheme implies. The traffic numbers are *modeled* (derived from
//! the same loop bounds the executor ran, assuming each plane/block load
//! misses cache), not measured with hardware counters; tests use them to
//! check that the measured overestimation of the implementations matches
//! the planner's κ formulas.

use std::ops::Add;

/// Work and modeled-traffic counters for one sweep call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Stencil evaluations performed, including ghost-zone recomputation.
    pub stencil_updates: u64,
    /// Grid points whose final-time value was committed to the destination
    /// grid (interior points × time steps).
    pub committed_points: u64,
    /// Modeled bytes read from DRAM.
    pub dram_bytes_read: u64,
    /// Modeled bytes written to DRAM.
    pub dram_bytes_written: u64,
}

impl SweepStats {
    /// Measured compute overestimation: stencil evaluations per committed
    /// point, the empirical counterpart of the planner's κ.
    ///
    /// Returns `NaN` when nothing was committed.
    pub fn overestimation(&self) -> f64 {
        self.stencil_updates as f64 / self.committed_points as f64
    }

    /// Total modeled DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_bytes_read + self.dram_bytes_written
    }
}

impl Add for SweepStats {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self {
            stencil_updates: self.stencil_updates + o.stencil_updates,
            committed_points: self.committed_points + o.committed_points,
            dram_bytes_read: self.dram_bytes_read + o.dram_bytes_read,
            dram_bytes_written: self.dram_bytes_written + o.dram_bytes_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overestimation_is_updates_per_committed_point() {
        let s = SweepStats {
            stencil_updates: 120,
            committed_points: 100,
            dram_bytes_read: 800,
            dram_bytes_written: 400,
        };
        assert!((s.overestimation() - 1.2).abs() < 1e-12);
        assert_eq!(s.dram_bytes(), 1200);
    }

    #[test]
    fn addition_is_componentwise() {
        let a = SweepStats {
            stencil_updates: 1,
            committed_points: 2,
            dram_bytes_read: 3,
            dram_bytes_written: 4,
        };
        let b = SweepStats {
            stencil_updates: 10,
            committed_points: 20,
            dram_bytes_read: 30,
            dram_bytes_written: 40,
        };
        let c = a + b;
        assert_eq!(c.stencil_updates, 11);
        assert_eq!(c.committed_points, 22);
        assert_eq!(c.dram_bytes_read, 33);
        assert_eq!(c.dram_bytes_written, 44);
    }

    #[test]
    fn empty_stats_overestimation_is_nan() {
        assert!(SweepStats::default().overestimation().is_nan());
    }
}
