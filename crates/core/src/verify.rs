//! Packaged executor verification.
//!
//! Downstream code adding its own kernels or executor variants can reuse
//! the same machinery this repository uses to validate the 3.5-D
//! pipeline: run the candidate against the scalar reference on a battery
//! of deterministic pseudo-random grids and report the first divergence.

use std::fmt;

use threefive_grid::{Dim3, DoubleGrid, Grid3, Real};

use crate::error::ExecError;
use crate::exec::reference_sweep;
use crate::kernel::StencilKernel;

/// A divergence found by [`verify_executor`].
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Grid where the executor and the reference first disagreed.
    pub dim: Dim3,
    /// Number of time steps in the failing configuration.
    pub steps: usize,
    /// First differing point.
    pub at: (usize, usize, usize),
    /// Reference value (as `f64`).
    pub expected: f64,
    /// Executor value (as `f64`).
    pub got: f64,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "executor diverged from reference on {} after {} steps at {:?}: \
             expected {}, got {}",
            self.dim, self.steps, self.at, self.expected, self.got
        )
    }
}

/// Deterministic pseudo-random initial grid (seeded hash of coordinates).
pub fn verification_grid<T: Real>(dim: Dim3, seed: u64) -> Grid3<T> {
    Grid3::from_fn(dim, |x, y, z| {
        let mut h = (x as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((y as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((z as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(seed.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        // Finalizer so every input bit (including the seed) reaches the
        // extracted bits.
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        T::from_f64(((h >> 17) % 1024) as f64 / 512.0 - 1.0)
    })
}

/// Checks every grid point for NaN/±∞ and reports the **first** offending
/// coordinate in row-major (z-outermost) scan order.
///
/// Jacobi sweeps are contractions, so non-finite values never arise from
/// healthy execution — they indicate corrupted input, a broken custom
/// kernel, or memory damage from a fault mid-sweep. The facade's
/// [`run_plan`](../../threefive/fn.run_plan.html) runs this guard after
/// each ladder rung so corruption triggers a downgrade instead of
/// propagating silently.
pub fn check_finite<T: Real>(grid: &Grid3<T>) -> Result<(), ExecError> {
    let dim = grid.dim();
    for z in 0..dim.nz {
        let plane = grid.plane(z);
        // Scan the cheap way (slice order == x-then-y order) and only
        // reconstruct coordinates on failure.
        if let Some(i) = plane.iter().position(|v| !v.to_f64().is_finite()) {
            let (x, y) = (i % dim.nx, i / dim.nx);
            return Err(ExecError::NonFinite {
                at: (x, y, z),
                value: plane[i].to_f64(),
            });
        }
    }
    Ok(())
}

/// Runs `executor` against the scalar reference over a battery of grid
/// shapes and step counts, demanding **bit-exact** agreement (achievable
/// whenever the kernel fixes its association order — see the crate docs).
///
/// `executor(grids, steps)` must advance the pair and leave the result in
/// `grids.src()`, like every executor in [`crate::exec`].
pub fn verify_executor<T, K, F>(kernel: &K, mut executor: F) -> Result<(), Divergence>
where
    T: Real,
    K: StencilKernel<T>,
    F: FnMut(&mut DoubleGrid<T>, usize),
{
    let battery = [
        (Dim3::cube(8), 1usize),
        (Dim3::cube(12), 4),
        (Dim3::new(17, 9, 11), 3),
        (Dim3::new(5, 19, 7), 5),
        (Dim3::new(2 * kernel.radius() + 2, 9, 9), 2),
    ];
    for (i, &(dim, steps)) in battery.iter().enumerate() {
        let init = verification_grid::<T>(dim, i as u64 * 7919);
        let mut want = DoubleGrid::from_initial(init.clone());
        reference_sweep(kernel, &mut want, steps);
        let mut got = DoubleGrid::from_initial(init);
        executor(&mut got, steps);
        for (x, y, z) in dim.full_region().points() {
            let a = want.src().get(x, y, z);
            let b = got.src().get(x, y, z);
            if a != b {
                return Err(Divergence {
                    dim,
                    steps,
                    at: (x, y, z),
                    expected: a.to_f64(),
                    got: b.to_f64(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{blocked35d_sweep, simd_sweep, Blocking35};
    use crate::kernel::{GenericStar, SevenPoint};

    #[test]
    fn library_executors_pass_verification() {
        let k = SevenPoint::new(0.4f32, 0.1);
        verify_executor(&k, |g, steps| {
            simd_sweep(&k, g, steps);
        })
        .unwrap();
        verify_executor(&k, |g, steps| {
            blocked35d_sweep(&k, g, steps, Blocking35::new(6, 7, 2));
        })
        .unwrap();
        let star = GenericStar::<f64>::smoothing(2);
        verify_executor(&star, |g, steps| {
            blocked35d_sweep(&star, g, steps, Blocking35::new(8, 8, 2));
        })
        .unwrap();
    }

    #[test]
    fn a_buggy_executor_is_caught_with_location() {
        let k = SevenPoint::new(0.4f64, 0.1);
        // "Executor" that runs one step too few.
        let err = verify_executor(&k, |g, steps| {
            simd_sweep(&k, g, steps.saturating_sub(1));
        })
        .unwrap_err();
        assert!(err.expected != err.got);
        let msg = err.to_string();
        assert!(msg.contains("diverged"), "{msg}");
    }

    #[test]
    fn check_finite_accepts_healthy_grids() {
        let g = verification_grid::<f32>(Dim3::cube(7), 3);
        check_finite(&g).unwrap();
    }

    #[test]
    fn check_finite_reports_first_bad_coordinate() {
        let d = Dim3::new(5, 4, 3);
        let mut g = Grid3::<f64>::splat(d, 1.0);
        g.set(3, 2, 1, f64::NAN);
        g.set(4, 3, 2, f64::INFINITY); // later in scan order
        match check_finite(&g).unwrap_err() {
            ExecError::NonFinite { at, value } => {
                assert_eq!(at, (3, 2, 1));
                assert!(value.is_nan());
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn verification_grid_is_deterministic_and_seed_sensitive() {
        let d = Dim3::cube(6);
        let a = verification_grid::<f32>(d, 1);
        let b = verification_grid::<f32>(d, 1);
        let c = verification_grid::<f32>(d, 2);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        // Values are bounded.
        assert!(a.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
    }
}
