//! The dispatch loop: queue → team lease → runner → routed response.
//!
//! This file is on the service's hot path (one iteration per admitted
//! job, concurrent with every other dispatcher) and is held to the
//! in-tree `hot-path-alloc` / `hot-path-sync` lint rules: no locks and no
//! container allocation in the loop itself. The queue, the pool, the
//! stats and the metrics plane own their blocking/allocating internals
//! behind their APIs; responses leave through the caller-supplied
//! [`ReplySink`].
//!
//! Clock discipline: each iteration takes exactly the two `Instant`
//! reads the deadline checks always took. The queue-wait histogram
//! reuses the first read; the end-to-end latency histogram takes one
//! extra read per job, gated through [`ServeMetrics::now`] so a disabled
//! metrics plane adds zero clock traffic.

use std::time::{Duration, Instant};

use threefive_sync::{TeamPool, ThreadTeam};

use crate::job::{Completed, JobFailure, JobId, JobSpec};
use crate::metrics::ServeMetrics;
use crate::protocol::Response;
use crate::queue::{AdmissionQueue, Popped, QueuedJob};
use crate::stats::ServiceStats;

/// How long a dispatcher blocks on an empty queue before re-checking for
/// drain; also the granularity at which a drain request is noticed.
pub const POP_POLL: Duration = Duration::from_millis(50);

/// What a [`JobRunner`] reports back for one job.
#[derive(Debug)]
pub struct RunOutcome {
    /// Completion or typed failure, as sent to the tenant.
    pub result: Result<Completed, JobFailure>,
    /// Whether the team that ran the job should be health-probed before
    /// re-entering the pool (set after panics, stalls, or any executor
    /// error that could leave workers wedged).
    pub team_suspect: bool,
}

/// Executes one admitted job on a leased team within a deadline budget.
///
/// Implemented by the facade crate (which owns the degradation ladder);
/// the service crate only knows this interface, keeping the dependency
/// arrow pointing from the binary down into the service, never back.
pub trait JobRunner: Send + Sync {
    /// Runs `spec` on `team`, spending at most `remaining`, tagging any
    /// telemetry it emits with `job_id`. Must not panic: executor panics
    /// are to be captured into the outcome (`team_suspect = true`).
    fn run(
        &self,
        spec: &JobSpec,
        team: &ThreadTeam,
        remaining: Duration,
        job_id: JobId,
    ) -> RunOutcome;
}

/// Where finished-job responses go. The server implements this with its
/// per-connection channels; tests implement it with a collector.
pub trait ReplySink: Send + Sync {
    /// Routes `resp` for job `job_id` back to the connection identified
    /// by `reply_to`. A vanished connection is not an error: the result
    /// is dropped but still counted in the stats.
    fn send(&self, reply_to: u64, job_id: JobId, resp: Response);
}

/// Runs one dispatcher until the queue reports
/// [`Closed`](crate::queue::Popped::Closed) (drain complete). Each
/// iteration serves exactly one job end to end, so joining every
/// dispatcher thread is the server's proof that all admitted jobs were
/// served before exit.
pub fn run_dispatcher(
    queue: &AdmissionQueue,
    pool: &TeamPool,
    runner: &dyn JobRunner,
    stats: &ServiceStats,
    metrics: &ServeMetrics,
    replies: &dyn ReplySink,
) {
    loop {
        match queue.pop(POP_POLL) {
            Popped::Closed => return,
            Popped::Empty => continue,
            Popped::Job(job) => serve_one(job, pool, runner, stats, metrics, replies),
        }
    }
}

fn serve_one(
    job: QueuedJob,
    pool: &TeamPool,
    runner: &dyn JobRunner,
    stats: &ServiceStats,
    metrics: &ServeMetrics,
    replies: &dyn ReplySink,
) {
    let deadline_ms = job.spec.deadline.as_millis() as u64;
    let kernel = job.spec.workload.kernel_label();
    // Deadline check 1: the job may have aged out while queued. The same
    // clock read feeds the queue-wait histogram. Expired jobs are
    // answered with a typed failure without touching a team.
    let popped_at = Instant::now();
    metrics.on_queue_wait(popped_at.duration_since(job.admitted_at));
    let Some(budget) = job.remaining(popped_at) else {
        stats.job_timed_out();
        metrics.on_resolved(kernel, job.reply_to);
        metrics.on_job_failed(job.id, "DeadlineExpired", "expired while queued");
        replies.send(
            job.reply_to,
            job.id,
            Response::Failed {
                job_id: job.id,
                failure: JobFailure::DeadlineExpired { deadline_ms },
            },
        );
        return;
    };
    // The checkout wait is bounded by the job's remaining budget, so a
    // starved pool converts into a typed per-job failure, not a wedge.
    let Some(lease) = pool.checkout(budget) else {
        stats.job_timed_out();
        metrics.on_resolved(kernel, job.reply_to);
        metrics.on_job_failed(job.id, "PoolExhausted", "no team within budget");
        replies.send(
            job.reply_to,
            job.id,
            Response::Failed {
                job_id: job.id,
                failure: JobFailure::PoolExhausted,
            },
        );
        return;
    };
    // Deadline check 2: re-measure after the (possibly long) checkout so
    // the runner receives the budget that is actually left.
    let Some(budget) = job.remaining(Instant::now()) else {
        stats.job_timed_out();
        metrics.on_resolved(kernel, job.reply_to);
        metrics.on_job_failed(job.id, "DeadlineExpired", "expired at team checkout");
        replies.send(
            job.reply_to,
            job.id,
            Response::Failed {
                job_id: job.id,
                failure: JobFailure::DeadlineExpired { deadline_ms },
            },
        );
        return;
    };
    let mut lease = lease;
    let outcome = runner.run(&job.spec, lease.team(), budget, job.id);
    if outcome.team_suspect {
        // Checkin will health-probe (and quarantine if needed) instead
        // of handing a possibly-wedged team to the next tenant.
        lease.mark_suspect();
    }
    metrics.on_resolved(kernel, job.reply_to);
    // End-to-end latency (admission → response), behind the clock gate.
    if let Some(now) = metrics.now() {
        metrics.on_latency(now.duration_since(job.admitted_at));
    }
    let resp = match outcome.result {
        Ok(completed) => {
            stats.job_completed();
            metrics.on_completed(&completed.rung, completed.downgrades, completed.exec_ms);
            Response::Done {
                job_id: job.id,
                completed,
            }
        }
        Err(failure) => {
            match failure {
                JobFailure::DeadlineExpired { .. } | JobFailure::PoolExhausted => {
                    stats.job_timed_out()
                }
                JobFailure::Failed { .. } => stats.job_failed(),
            }
            metrics.on_job_failed(job.id, failure.kind(), "runner-reported failure");
            Response::Failed {
                job_id: job.id,
                failure,
            }
        }
    };
    drop(lease);
    replies.send(job.reply_to, job.id, resp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Workload;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    struct Collector {
        got: Mutex<Vec<(u64, JobId, Response)>>,
    }

    impl ReplySink for Collector {
        fn send(&self, reply_to: u64, job_id: JobId, resp: Response) {
            self.got.lock().unwrap().push((reply_to, job_id, resp));
        }
    }

    struct FakeRunner {
        ran: AtomicU64,
        suspect: bool,
    }

    impl JobRunner for FakeRunner {
        fn run(
            &self,
            _spec: &JobSpec,
            team: &ThreadTeam,
            _remaining: Duration,
            job_id: JobId,
        ) -> RunOutcome {
            // Prove the lease hands us a live team.
            team.run(|_tid| {});
            self.ran.fetch_add(1, Ordering::Relaxed);
            RunOutcome {
                result: Ok(Completed {
                    rung: "fake".into(),
                    downgrades: 0,
                    checksum: job_id,
                    barrier_share: None,
                    exec_ms: 0.1,
                }),
                team_suspect: self.suspect,
            }
        }
    }

    fn queued(id: JobId, deadline: Duration) -> QueuedJob {
        QueuedJob {
            id,
            spec: JobSpec {
                workload: Workload::Stencil,
                n: 8,
                steps: 2,
                dim_t: 2,
                tile: 8,
                deadline,
                priority: 0,
            },
            admitted_at: Instant::now(),
            reply_to: 42,
        }
    }

    /// Admit through the stats so `in_flight` matches what the
    /// dispatcher will resolve (as the server does).
    fn admit(queue: &AdmissionQueue, stats: &ServiceStats, job: QueuedJob) {
        stats.offer(|| queue.push(job)).unwrap();
    }

    #[test]
    fn dispatcher_serves_jobs_then_exits_on_close() {
        let queue = AdmissionQueue::new(8);
        let pool = TeamPool::new(1, 2);
        let runner = FakeRunner {
            ran: AtomicU64::new(0),
            suspect: false,
        };
        let stats = ServiceStats::default();
        let metrics = ServeMetrics::new();
        let sink = Collector {
            got: Mutex::new(Vec::new()),
        };
        admit(&queue, &stats, queued(1, Duration::from_secs(5)));
        admit(&queue, &stats, queued(2, Duration::from_secs(5)));
        queue.close();
        run_dispatcher(&queue, &pool, &runner, &stats, &metrics, &sink);
        assert_eq!(runner.ran.load(Ordering::Relaxed), 2);
        let counts = stats.snapshot();
        counts.check_identities().unwrap();
        assert_eq!(counts.completed, 2);
        assert_eq!(counts.in_flight, 0);
        let got = sink.got.lock().unwrap();
        assert_eq!(got.len(), 2);
        assert!(got
            .iter()
            .all(|(to, _, r)| *to == 42 && matches!(r, Response::Done { .. })));
        assert_eq!(pool.idle(), 1, "lease returned to the pool");
        // The metrics plane saw both jobs: queue wait, kernel label, rung.
        assert_eq!(metrics.queue_wait.snapshot().total(), 2);
        assert_eq!(metrics.latency.snapshot().total(), 2);
        let expo = metrics.exposition();
        assert!(expo.contains("threefive_jobs_by_kernel_total{kernel=\"stencil\"} 2"));
        assert!(expo.contains("threefive_jobs_by_rung_total{rung=\"fake\"} 2"));
    }

    #[test]
    fn queue_aged_job_fails_typed_without_touching_a_team() {
        let queue = AdmissionQueue::new(8);
        let pool = TeamPool::new(1, 2);
        let runner = FakeRunner {
            ran: AtomicU64::new(0),
            suspect: false,
        };
        let stats = ServiceStats::default();
        let metrics = ServeMetrics::new();
        let sink = Collector {
            got: Mutex::new(Vec::new()),
        };
        let mut job = queued(9, Duration::from_millis(1));
        job.admitted_at = Instant::now() - Duration::from_secs(1);
        admit(&queue, &stats, job);
        queue.close();
        run_dispatcher(&queue, &pool, &runner, &stats, &metrics, &sink);
        assert_eq!(runner.ran.load(Ordering::Relaxed), 0, "must not dispatch");
        let counts = stats.snapshot();
        counts.check_identities().unwrap();
        assert_eq!(counts.timed_out, 1);
        let got = sink.got.lock().unwrap();
        match &got[0].2 {
            Response::Failed { job_id, failure } => {
                assert_eq!(*job_id, 9);
                assert_eq!(failure.kind(), "DeadlineExpired");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The age-out became a warn event and a >=1s queue-wait sample.
        let events = metrics.events.tail(10, threefive_metrics::Level::Warn);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "job_failed");
        assert_eq!(events[0].job_id, Some(9));
        let wait = metrics.queue_wait.snapshot();
        assert_eq!(wait.total(), 1);
        assert!(wait.quantile_ns(0.5).unwrap() >= 1_000_000_000 / 2);
    }

    #[test]
    fn suspect_outcome_probes_team_and_keeps_pool_full() {
        let queue = AdmissionQueue::new(8);
        let pool = TeamPool::new(1, 2);
        let runner = FakeRunner {
            ran: AtomicU64::new(0),
            suspect: true,
        };
        let stats = ServiceStats::default();
        let metrics = ServeMetrics::new();
        let sink = Collector {
            got: Mutex::new(Vec::new()),
        };
        admit(&queue, &stats, queued(1, Duration::from_secs(5)));
        queue.close();
        run_dispatcher(&queue, &pool, &runner, &stats, &metrics, &sink);
        // The healthy team passes its probe and returns to service.
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.quarantined(), 0);
    }

    #[test]
    fn parallel_dispatchers_drain_shared_queue() {
        let queue = Arc::new(AdmissionQueue::new(32));
        let pool = Arc::new(TeamPool::new(2, 2));
        let runner = Arc::new(FakeRunner {
            ran: AtomicU64::new(0),
            suspect: false,
        });
        let stats = Arc::new(ServiceStats::default());
        let metrics = ServeMetrics::new();
        let sink = Arc::new(Collector {
            got: Mutex::new(Vec::new()),
        });
        for id in 0..16 {
            admit(&queue, &stats, queued(id, Duration::from_secs(10)));
        }
        queue.close();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (q, p, r, s, m, k) = (
                    Arc::clone(&queue),
                    Arc::clone(&pool),
                    Arc::clone(&runner),
                    Arc::clone(&stats),
                    Arc::clone(&metrics),
                    Arc::clone(&sink),
                );
                std::thread::spawn(move || run_dispatcher(&q, &p, r.as_ref(), &s, &m, k.as_ref()))
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let counts = stats.snapshot();
        counts.check_identities().unwrap();
        assert_eq!(counts.completed, 16);
        assert_eq!(counts.in_flight, 0);
        assert_eq!(sink.got.lock().unwrap().len(), 16);
        assert_eq!(pool.idle(), 2);
        assert_eq!(metrics.exec.snapshot().total(), 16);
    }
}
