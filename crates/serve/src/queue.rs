//! Bounded, priority-classed admission queue.
//!
//! The queue is the daemon's backpressure valve: capacity is counted
//! across **all** priority classes, and a push against a full queue fails
//! immediately with [`Rejected::QueueFull`] — the caller (the connection
//! handler) turns that into a typed wire response instead of buffering
//! without bound. Dispatchers pop highest-priority-first, FIFO within a
//! class, blocking on a condvar with a timeout so they can notice drain
//! requests promptly.
//!
//! The queue is generic over a [`SyncFamily`] so the model checker can
//! exhaustively explore push/pop/close interleavings — including the
//! lost-wakeup window between dropping the lock and notifying — on this
//! exact code (DESIGN.md §16). Production code uses the default
//! [`StdFamily`] instantiation, which compiles to plain `std` types.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use threefive_sync::shim::{CondvarShim, MutexShim, StdFamily, SyncFamily};

use crate::job::{JobId, JobSpec, Rejected, PRIORITIES};

/// One admitted job waiting for a team, plus the bookkeeping dispatch
/// needs to honor its deadline and route its response.
#[derive(Debug)]
pub struct QueuedJob {
    /// Daemon-assigned id.
    pub id: JobId,
    /// The validated spec.
    pub spec: JobSpec,
    /// When the job was admitted; the deadline counts from here.
    pub admitted_at: Instant,
    /// Connection-handler token used to route the response back to the
    /// tenant that submitted the job.
    pub reply_to: u64,
}

impl QueuedJob {
    /// Deadline budget still remaining, or `None` if already expired.
    pub fn remaining(&self, now: Instant) -> Option<Duration> {
        self.spec
            .deadline
            .checked_sub(now.saturating_duration_since(self.admitted_at))
            .filter(|d| !d.is_zero())
    }
}

/// Result of a [`AdmissionQueue::pop`] attempt.
#[derive(Debug)]
pub enum Popped {
    /// A job, highest priority class first.
    Job(QueuedJob),
    /// Timed out with the queue open but empty.
    Empty,
    /// The queue is closed and fully drained; dispatchers should exit.
    Closed,
}

struct Classes {
    // One FIFO lane per priority class; index == class.
    lanes: [VecDeque<QueuedJob>; PRIORITIES],
    len: usize,
    closed: bool,
}

/// Bounded multi-priority queue between admission and dispatch.
pub struct AdmissionQueue<F: SyncFamily = StdFamily> {
    inner: F::Mutex<Classes>,
    nonempty: F::Condvar,
    cap: usize,
}

impl AdmissionQueue {
    /// Creates a queue holding at most `capacity` jobs across all
    /// priority classes (the production [`StdFamily`] instantiation).
    pub fn new(capacity: usize) -> Self {
        Self::new_in(capacity)
    }
}

impl<F: SyncFamily> AdmissionQueue<F> {
    /// Creates a queue holding at most `capacity` jobs in family `F`.
    pub fn new_in(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            inner: F::Mutex::new(Classes {
                lanes: std::array::from_fn(|_| VecDeque::new()),
                len: 0,
                closed: false,
            }),
            nonempty: F::Condvar::new(),
            cap: capacity,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Jobs currently queued (all classes).
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// Whether the queue holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits a job, or refuses with a typed rejection: `ShuttingDown`
    /// once [`close`](Self::close) was called, `QueueFull` at capacity.
    pub fn push(&self, job: QueuedJob) -> Result<(), Rejected> {
        let mut q = self.inner.lock();
        if q.closed {
            return Err(Rejected::ShuttingDown);
        }
        if q.len >= self.cap {
            return Err(Rejected::QueueFull { capacity: self.cap });
        }
        let class = usize::from(job.spec.priority).min(PRIORITIES - 1);
        q.lanes[class].push_back(job);
        q.len += 1;
        drop(q);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Pops the next job, waiting up to `timeout` for one to arrive.
    /// Highest class first, FIFO within a class. After
    /// [`close`](Self::close), already-queued jobs continue to pop (drain) until
    /// the queue is empty, then every waiter gets [`Popped::Closed`].
    pub fn pop(&self, timeout: Duration) -> Popped {
        let deadline = F::deadline(timeout);
        let mut q = self.inner.lock();
        loop {
            if q.len > 0 {
                for lane in q.lanes.iter_mut().rev() {
                    if let Some(job) = lane.pop_front() {
                        q.len -= 1;
                        return Popped::Job(job);
                    }
                }
                unreachable!("len > 0 but every lane empty");
            }
            if q.closed {
                return Popped::Closed;
            }
            let Some(wait) = F::remaining(deadline) else {
                return Popped::Empty;
            };
            let (guard, timed_out) = self.nonempty.wait_timeout(q, wait);
            q = guard;
            if timed_out && q.len == 0 {
                return if q.closed {
                    Popped::Closed
                } else {
                    Popped::Empty
                };
            }
        }
    }

    /// Closes admission: subsequent pushes fail with `ShuttingDown`,
    /// queued jobs keep draining, and blocked poppers wake.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Workload;
    use std::sync::Arc;

    fn job(id: JobId, priority: u8) -> QueuedJob {
        QueuedJob {
            id,
            spec: JobSpec {
                workload: Workload::Stencil,
                n: 8,
                steps: 2,
                dim_t: 2,
                tile: 8,
                deadline: Duration::from_secs(1),
                priority,
            },
            admitted_at: Instant::now(),
            reply_to: 0,
        }
    }

    fn pop_id(q: &AdmissionQueue) -> JobId {
        match q.pop(Duration::from_millis(100)) {
            Popped::Job(j) => j.id,
            other => panic!("expected a job, got {other:?}"),
        }
    }

    #[test]
    fn fifo_within_class_priority_across_classes() {
        let q = AdmissionQueue::new(8);
        q.push(job(1, 0)).unwrap();
        q.push(job(2, 2)).unwrap();
        q.push(job(3, 1)).unwrap();
        q.push(job(4, 2)).unwrap();
        assert_eq!(pop_id(&q), 2);
        assert_eq!(pop_id(&q), 4);
        assert_eq!(pop_id(&q), 3);
        assert_eq!(pop_id(&q), 1);
    }

    #[test]
    fn full_queue_rejects_with_capacity() {
        let q = AdmissionQueue::new(2);
        q.push(job(1, 0)).unwrap();
        q.push(job(2, 0)).unwrap();
        assert_eq!(
            q.push(job(3, 0)).unwrap_err(),
            Rejected::QueueFull { capacity: 2 }
        );
        // Popping frees a slot; admission resumes.
        pop_id(&q);
        q.push(job(3, 0)).unwrap();
    }

    #[test]
    fn empty_pop_times_out() {
        let q = AdmissionQueue::new(2);
        assert!(matches!(q.pop(Duration::from_millis(10)), Popped::Empty));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = AdmissionQueue::new(4);
        q.push(job(1, 0)).unwrap();
        q.close();
        assert_eq!(q.push(job(2, 0)).unwrap_err(), Rejected::ShuttingDown);
        assert_eq!(pop_id(&q), 1);
        assert!(matches!(q.pop(Duration::from_millis(10)), Popped::Closed));
    }

    #[test]
    fn close_wakes_blocked_popper() {
        let q = Arc::new(AdmissionQueue::new(2));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert!(matches!(h.join().unwrap(), Popped::Closed));
    }

    #[test]
    fn remaining_budget_counts_from_admission() {
        let j = job(1, 0);
        assert!(j.remaining(Instant::now()).is_some());
        let late = Instant::now() + Duration::from_secs(2);
        assert!(j.remaining(late).is_none());
    }
}
