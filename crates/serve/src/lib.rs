//! Multi-tenant solver service for the 3.5-D blocking engine.
//!
//! `threefive serve` turns the one-shot solver pipelines into a
//! long-running daemon: tenants submit stencil/LBM jobs over a
//! hand-rolled length-prefixed TCP protocol, admission control bounds
//! what any one tenant can claim, a fixed [`TeamPool`](threefive_sync::TeamPool)
//! of persistent pinned thread teams
//! executes jobs under per-job deadlines, and the quarantine/heal
//! machinery from the degradation ladder keeps one poisoned tenant from
//! wedging the pool or corrupting a neighbour.
//!
//! Robustness invariants this crate is built around:
//!
//! 1. **No silent drops.** Every request gets a typed response:
//!    `done`, `rejected` (QueueFull / GridTooLarge / BadPlan /
//!    ShuttingDown), `failed` (DeadlineExpired / PoolExhausted /
//!    Failed) or `bad_request`.
//! 2. **Deadlines are end-to-end.** A job's budget covers queue wait,
//!    pool checkout and execution; whatever remains at dispatch flows
//!    into the executor watchdog.
//! 3. **Fault isolation is per-team.** A panicking or stalling job marks
//!    only its own leased team suspect; the pool health-probes it on
//!    checkin, quarantines it if wedged, and heals it back once the
//!    straggler drains — capacity is conserved, never leaked.
//! 4. **Shutdown is a drain, not an abort.** SIGINT/SIGTERM (or the
//!    `shutdown` command) closes admission with typed rejections while
//!    every already-admitted job runs to its answer; the daemon exits 0
//!    with all threads joined.
//!
//! Module map: [`job`] (specs + typed refusals), [`queue`] (bounded
//! priority admission queue), [`protocol`] (framing + JSON codec),
//! [`dispatch`] (the per-job hot path), [`server`] (accept loop, drain),
//! [`signal`] (SIGINT/SIGTERM), [`client`] (synchronous tenant client),
//! [`stats`] (consistent admission accounting), [`metrics`] (live
//! registry, Prometheus exposition and the structured event log).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod client;
pub mod dispatch;
pub mod job;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;
pub mod stats;

pub use client::ServiceClient;
pub use dispatch::{JobRunner, ReplySink, RunOutcome};
pub use job::{
    AdmissionLimits, Completed, JobFailure, JobId, JobSpec, LbmScenario, Rejected, Workload,
    PRIORITIES,
};
pub use metrics::{ServeMetrics, EXEC_METRIC, JOB_LATENCY_METRIC, QUEUE_WAIT_METRIC};
pub use protocol::{ChaosCmd, Request, Response, WireError};
pub use queue::{AdmissionQueue, Popped, QueuedJob};
pub use server::{Server, ServerConfig};
pub use stats::{Counts, ServiceStats};
