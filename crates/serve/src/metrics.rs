//! The daemon's live metrics plane: one [`ServeMetrics`] bundle owning
//! the registry, the structured event log, and every handle the serve
//! path bumps.
//!
//! Three sources feed the registry:
//!
//! * **Owned handles** (families, histograms, counters) bumped from the
//!   dispatch loop and the job runner.
//! * **The [`ServiceStats`] collector** — admission counters are
//!   snapshotted under their own mutex at scrape time, so the accounting
//!   identities hold in every exposition, not just eventually.
//! * **The pool/queue collector** — `TeamPool` and `AdmissionQueue`
//!   already own their gauges; the collector reads their getters at
//!   scrape time instead of mirroring state.
//!
//! Clock discipline: the only latency measurement that needs a clock
//! read beyond what dispatch already takes for deadlines (end-to-end
//! latency at response time) is gated through [`ServeMetrics::now`],
//! which returns `None` — without reading the clock — when metrics are
//! disabled. Queue-wait reuses the deadline check's `Instant`, and the
//! exec histogram is fed from the runner's own `exec_ms`.

use std::sync::Arc;
use std::time::Duration;

use threefive_bench::json::Json;
use threefive_metrics::{
    render_prometheus, Clock, Collector, Counter, CounterFamily, Event, EventLog, FieldValue,
    Gauge, HistSpec, Histogram, Level, MetricSnapshot, MetricValue, Registry, Snapshot,
};
use threefive_sync::TeamPool;

use crate::queue::AdmissionQueue;
use crate::signal;
use crate::stats::ServiceStats;

/// Metric name of the end-to-end (admission → response) latency
/// histogram; loadgen's `--verify-latency` cross-checks against it.
pub const JOB_LATENCY_METRIC: &str = "threefive_job_latency_seconds";
/// Metric name of the queue-wait histogram.
pub const QUEUE_WAIT_METRIC: &str = "threefive_job_queue_wait_seconds";
/// Metric name of the executor-time histogram.
pub const EXEC_METRIC: &str = "threefive_job_exec_seconds";

/// Default event-ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Every live-metrics handle the serving layer bumps, plus the registry
/// and event log they feed. Shared as one `Arc` between the server, the
/// dispatchers, and the facade's job runner.
pub struct ServeMetrics {
    clock: Clock,
    /// The registry; scrape with [`Registry::snapshot`] or
    /// [`ServeMetrics::exposition`].
    pub registry: Registry,
    /// Structured event ring, queryable over the `events` command.
    pub events: EventLog,
    events_by_level: CounterFamily,
    /// Completed jobs by degradation-ladder rung.
    pub jobs_by_rung: CounterFamily,
    /// Resolved jobs (any outcome) by kernel.
    pub jobs_by_kernel: CounterFamily,
    /// Resolved jobs (any outcome) by tenant connection.
    pub jobs_by_tenant: CounterFamily,
    /// Total ladder downgrades across completed jobs.
    pub downgrades_total: Counter,
    /// Time jobs spent queued before dispatch.
    pub queue_wait: Histogram,
    /// Executor wall time (runner-measured `exec_ms`).
    pub exec: Histogram,
    /// End-to-end latency, admission to response.
    pub latency: Histogram,
    /// Tuned-plan database hits (job matched a stored plan).
    pub tune_db_hits: Counter,
    /// Tuned-plan database misses (analytical/spec plan used).
    pub tune_db_misses: Counter,
    /// Plans loaded from the tuning database at startup.
    pub tune_db_entries: Gauge,
    /// Engine sweeps observed (jobs that ran with instrumentation).
    pub engine_sweeps_total: Counter,
    /// Total engine compute nanoseconds (sum over worker threads).
    pub engine_compute_ns_total: Counter,
    /// Total engine barrier-wait nanoseconds (sum over worker threads).
    pub engine_barrier_ns_total: Counter,
    /// Barrier-wait episode histogram, same geometry as
    /// `threefive_sync::WaitHistogram`.
    pub barrier_wait: Histogram,
}

impl ServeMetrics {
    /// An enabled metrics plane with the default event capacity and no
    /// stderr echo.
    pub fn new() -> Arc<Self> {
        Self::with_options(true, DEFAULT_EVENT_CAPACITY, None)
    }

    /// A disabled plane: [`now`](Self::now) never reads the clock. The
    /// registry and event log still function (scrapes see zeros).
    pub fn disabled() -> Arc<Self> {
        Self::with_options(false, DEFAULT_EVENT_CAPACITY, None)
    }

    /// Full-control constructor. `stderr_echo` additionally prints events
    /// at the given level or above to stderr as JSONL.
    pub fn with_options(
        enabled: bool,
        event_capacity: usize,
        stderr_echo: Option<Level>,
    ) -> Arc<Self> {
        let registry = Registry::new();
        let mut events = EventLog::new(event_capacity);
        if let Some(min) = stderr_echo {
            events = events.with_stderr_echo(min);
        }
        let events_by_level = registry.counter_family(
            "threefive_events_total",
            "Structured events emitted, by level.",
            "level",
        );
        let jobs_by_rung = registry.counter_family(
            "threefive_jobs_by_rung_total",
            "Completed jobs by degradation-ladder rung actually served.",
            "rung",
        );
        let jobs_by_kernel = registry.counter_family(
            "threefive_jobs_by_kernel_total",
            "Resolved jobs (completed, failed or timed out) by kernel.",
            "kernel",
        );
        let jobs_by_tenant = registry.counter_family(
            "threefive_jobs_by_tenant_total",
            "Resolved jobs (completed, failed or timed out) by tenant connection.",
            "tenant",
        );
        let downgrades_total = registry.counter(
            "threefive_job_downgrades_total",
            "Degradation-ladder downgrades summed over completed jobs.",
        );
        let queue_wait = registry.histogram(
            QUEUE_WAIT_METRIC,
            "Time admitted jobs waited in the queue before dispatch.",
            HistSpec::LATENCY,
        );
        let exec = registry.histogram(
            EXEC_METRIC,
            "Executor wall time per completed job (runner-measured).",
            HistSpec::LATENCY,
        );
        let latency = registry.histogram(
            JOB_LATENCY_METRIC,
            "End-to-end latency from admission to response, per resolved job.",
            HistSpec::LATENCY,
        );
        let tune_db_hits = registry.counter(
            "threefive_tune_db_hits_total",
            "Jobs served from a stored tuned plan.",
        );
        let tune_db_misses = registry.counter(
            "threefive_tune_db_misses_total",
            "Jobs that fell back to the spec/analytical plan.",
        );
        let tune_db_entries = registry.gauge(
            "threefive_tune_db_entries",
            "Tuned plans loaded for this host at startup.",
        );
        let engine_sweeps_total = registry.counter(
            "threefive_engine_sweeps_total",
            "Instrumented engine sweeps observed.",
        );
        let engine_compute_ns_total = registry.counter(
            "threefive_engine_compute_ns_total",
            "Engine compute nanoseconds summed over worker threads.",
        );
        let engine_barrier_ns_total = registry.counter(
            "threefive_engine_barrier_ns_total",
            "Engine barrier-wait nanoseconds summed over worker threads.",
        );
        let barrier_wait = registry.histogram(
            "threefive_engine_barrier_wait_seconds",
            "Barrier-wait episodes (WaitHistogram geometry: log-4 from ~1us).",
            HistSpec::BARRIER_WAIT,
        );
        Arc::new(ServeMetrics {
            clock: if enabled {
                Clock::enabled()
            } else {
                Clock::disabled()
            },
            registry,
            events,
            events_by_level,
            jobs_by_rung,
            jobs_by_kernel,
            jobs_by_tenant,
            downgrades_total,
            queue_wait,
            exec,
            latency,
            tune_db_hits,
            tune_db_misses,
            tune_db_entries,
            engine_sweeps_total,
            engine_compute_ns_total,
            engine_barrier_ns_total,
            barrier_wait,
        })
    }

    /// Whether the latency clock gate is open.
    pub fn is_enabled(&self) -> bool {
        self.clock.is_enabled()
    }

    /// Gated clock read: `None` (with no clock access) when disabled.
    pub fn now(&self) -> Option<std::time::Instant> {
        self.clock.now()
    }

    /// Emit a structured event and count it by level.
    pub fn event(
        &self,
        level: Level,
        kind: &str,
        job_id: Option<u64>,
        fields: Vec<(String, FieldValue)>,
    ) {
        self.events_by_level.with(level.as_str()).inc();
        self.events.emit(level, kind, job_id, fields);
    }

    /// Dispatch hook: an admitted job was popped after `wait` in queue.
    pub fn on_queue_wait(&self, wait: Duration) {
        self.queue_wait.record_ns(wait.as_nanos() as u64);
    }

    /// Dispatch hook: a job resolved (any outcome); counts traffic by
    /// kernel and tenant connection.
    pub fn on_resolved(&self, kernel: &'static str, tenant_conn: u64) {
        self.jobs_by_kernel.with(kernel).inc();
        self.jobs_by_tenant
            .with(&format!("conn-{tenant_conn}"))
            .inc();
    }

    /// Dispatch hook: a job completed on `rung` after `exec_ms`.
    pub fn on_completed(&self, rung: &str, downgrades: u32, exec_ms: f64) {
        self.jobs_by_rung.with(rung).inc();
        if downgrades > 0 {
            self.downgrades_total.add(u64::from(downgrades));
        }
        self.exec.record_ns((exec_ms.max(0.0) * 1e6) as u64);
    }

    /// Dispatch hook: end-to-end latency for a resolved job (only called
    /// when the clock gate is open).
    pub fn on_latency(&self, latency: Duration) {
        self.latency.record_ns(latency.as_nanos() as u64);
    }

    /// Dispatch hook: a job failed or timed out; emits a warn event.
    /// (Allocation lives here, off the dispatch hot-path file.)
    pub fn on_job_failed(&self, job_id: u64, kind: &'static str, detail: &str) {
        self.event(
            Level::Warn,
            "job_failed",
            Some(job_id),
            vec![
                ("reason".to_string(), FieldValue::from(kind)),
                ("detail".to_string(), FieldValue::from(detail)),
            ],
        );
    }

    /// Runner hook: fold one instrumented sweep's observer totals into
    /// the engine counters without re-reading any clock.
    pub fn on_engine_sweep(&self, compute_ns: u64, barrier_ns: u64, wait_hist_counts: &[u64]) {
        self.engine_sweeps_total.inc();
        self.engine_compute_ns_total.add(compute_ns);
        self.engine_barrier_ns_total.add(barrier_ns);
        self.barrier_wait
            .merge_buckets(wait_hist_counts, barrier_ns);
    }

    /// Render the full registry as Prometheus text.
    pub fn exposition(&self) -> String {
        render_prometheus(&self.registry.snapshot())
    }
}

/// Scrape-time collector over [`ServiceStats`]: all admission counters
/// come from one locked snapshot, so the accounting identities hold in
/// every exposition.
pub struct StatsCollector {
    stats: Arc<ServiceStats>,
}

impl StatsCollector {
    /// Wrap the daemon's stats for registration.
    pub fn new(stats: Arc<ServiceStats>) -> Self {
        StatsCollector { stats }
    }
}

fn counter_metric(name: &str, help: &str, value: u64) -> MetricSnapshot {
    MetricSnapshot {
        name: name.to_string(),
        help: help.to_string(),
        samples: vec![(Vec::new(), MetricValue::Counter(value))],
    }
}

fn gauge_metric(name: &str, help: &str, value: i64) -> MetricSnapshot {
    MetricSnapshot {
        name: name.to_string(),
        help: help.to_string(),
        samples: vec![(Vec::new(), MetricValue::Gauge(value))],
    }
}

impl Collector for StatsCollector {
    fn collect(&self) -> Vec<MetricSnapshot> {
        let c = self.stats.snapshot();
        vec![
            counter_metric(
                "threefive_jobs_offered_total",
                "Solve requests received (before admission).",
                c.offered,
            ),
            counter_metric(
                "threefive_jobs_accepted_total",
                "Jobs admitted to the queue.",
                c.accepted,
            ),
            counter_metric(
                "threefive_jobs_rejected_total",
                "Typed admission refusals (all reasons).",
                c.rejected,
            ),
            counter_metric(
                "threefive_jobs_completed_total",
                "Jobs that completed with a checksum.",
                c.completed,
            ),
            counter_metric(
                "threefive_jobs_failed_total",
                "Admitted jobs that failed for a non-deadline reason.",
                c.failed,
            ),
            counter_metric(
                "threefive_jobs_timed_out_total",
                "Admitted jobs whose deadline expired before a result.",
                c.timed_out,
            ),
            gauge_metric(
                "threefive_jobs_in_flight",
                "Jobs admitted but not yet resolved (queued or executing).",
                c.in_flight as i64,
            ),
            counter_metric(
                "threefive_chaos_commands_total",
                "Chaos commands processed.",
                c.chaos_cmds,
            ),
        ]
    }
}

/// Scrape-time collector over the pool and queue gauges the daemon
/// already owns.
pub struct PoolQueueCollector {
    pool: Arc<TeamPool>,
    queue: Arc<AdmissionQueue>,
}

impl PoolQueueCollector {
    /// Wrap the daemon's pool and queue for registration.
    pub fn new(pool: Arc<TeamPool>, queue: Arc<AdmissionQueue>) -> Self {
        PoolQueueCollector { pool, queue }
    }
}

impl Collector for PoolQueueCollector {
    fn collect(&self) -> Vec<MetricSnapshot> {
        let states = vec![
            (
                vec![("state".to_string(), "idle".to_string())],
                MetricValue::Gauge(self.pool.idle() as i64),
            ),
            (
                vec![("state".to_string(), "leased".to_string())],
                MetricValue::Gauge(self.pool.leased() as i64),
            ),
            (
                vec![("state".to_string(), "quarantined".to_string())],
                MetricValue::Gauge(self.pool.quarantined() as i64),
            ),
        ];
        vec![
            gauge_metric(
                "threefive_queue_depth",
                "Jobs currently queued (all priority classes).",
                self.queue.len() as i64,
            ),
            gauge_metric(
                "threefive_queue_capacity",
                "Admission queue capacity.",
                self.queue.capacity() as i64,
            ),
            MetricSnapshot {
                name: "threefive_pool_teams".to_string(),
                help: "Teams in the pool, by state.".to_string(),
                samples: states,
            },
            gauge_metric(
                "threefive_pool_capacity",
                "Total teams in the pool.",
                self.pool.capacity() as i64,
            ),
            counter_metric(
                "threefive_pool_isolations_total",
                "Teams quarantined after failing a health probe.",
                self.pool.isolation_count() as u64,
            ),
            counter_metric(
                "threefive_pool_heals_total",
                "Quarantined teams healed back into service.",
                self.pool.heal_count() as u64,
            ),
            gauge_metric(
                "threefive_draining",
                "1 while a graceful drain is in progress.",
                i64::from(signal::shutdown_requested()),
            ),
        ]
    }
}

/// Render a registry snapshot as a JSON object keyed by metric name:
/// counters and gauges become numbers, families become objects keyed by
/// label value, histograms become `{count, sum_ns, p50_ns, p90_ns,
/// p99_ns, buckets: [{le_ns, count}, ...]}` with **non-cumulative**
/// bucket counts (so two snapshots can be subtracted bucket-wise).
pub fn snapshot_to_json(snap: &Snapshot) -> Json {
    let mut fields = Vec::with_capacity(snap.metrics.len());
    for metric in &snap.metrics {
        let value = match metric.samples.as_slice() {
            [(labels, single)] if labels.is_empty() => sample_to_json(single),
            samples => Json::Obj(
                samples
                    .iter()
                    .map(|(labels, v)| {
                        let key = labels
                            .first()
                            .map(|(_, value)| value.clone())
                            .unwrap_or_default();
                        (key, sample_to_json(v))
                    })
                    .collect(),
            ),
        };
        fields.push((metric.name.clone(), value));
    }
    Json::Obj(fields)
}

fn sample_to_json(value: &MetricValue) -> Json {
    match value {
        MetricValue::Counter(v) => Json::num(*v as f64),
        MetricValue::Gauge(v) => Json::num(*v as f64),
        MetricValue::Histogram(h) => {
            let buckets = h
                .counts
                .iter()
                .enumerate()
                .map(|(i, count)| {
                    Json::Obj(vec![
                        (
                            "le_ns".into(),
                            h.spec
                                .upper_ns(i)
                                .map_or(Json::Null, |ns| Json::num(ns as f64)),
                        ),
                        ("count".into(), Json::num(*count as f64)),
                    ])
                })
                .collect();
            let quant = |q: f64| {
                h.quantile_ns(q)
                    .map_or(Json::Null, |ns| Json::num(ns as f64))
            };
            Json::Obj(vec![
                ("count".into(), Json::num(h.total() as f64)),
                ("sum_ns".into(), Json::num(h.sum_ns as f64)),
                ("p50_ns".into(), quant(0.5)),
                ("p90_ns".into(), quant(0.9)),
                ("p99_ns".into(), quant(0.99)),
                ("buckets".into(), Json::Arr(buckets)),
            ])
        }
    }
}

/// Render one event as a JSON object for the `events` protocol response.
/// `seq`, `ts_ms` and `job_id` ride as JSON numbers (f64): they stay far
/// below 2^53 for any realistic daemon lifetime.
pub fn event_to_json(event: &Event) -> Json {
    let mut fields = vec![
        ("seq".into(), Json::num(event.seq as f64)),
        ("ts_ms".into(), Json::num(event.ts_ms as f64)),
        ("level".into(), Json::str(event.level.as_str())),
        ("kind".into(), Json::str(event.kind.clone())),
    ];
    if let Some(id) = event.job_id {
        fields.push(("job_id".into(), Json::num(id as f64)));
    }
    for (key, value) in &event.fields {
        let v = match value {
            FieldValue::Str(s) => Json::str(s.clone()),
            FieldValue::U64(n) => Json::num(*n as f64),
            FieldValue::F64(n) if n.is_finite() => Json::num(*n),
            FieldValue::F64(_) => Json::Null,
            FieldValue::Bool(b) => Json::Bool(*b),
        };
        fields.push((key.clone(), v));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_metrics_never_read_the_clock() {
        let m = ServeMetrics::disabled();
        assert!(!m.is_enabled());
        assert!(m.now().is_none(), "disabled gate must return None");
        assert!(ServeMetrics::new().now().is_some());
    }

    #[test]
    fn exposition_of_a_fresh_plane_validates() {
        let m = ServeMetrics::new();
        m.on_queue_wait(Duration::from_micros(80));
        m.on_resolved("stencil", 3);
        m.on_completed("parallel-3.5d", 1, 2.5);
        m.on_latency(Duration::from_millis(3));
        m.on_engine_sweep(1_000_000, 50_000, &[1; 12]);
        m.on_job_failed(9, "DeadlineExpired", "budget exhausted");
        let text = m.exposition();
        threefive_metrics::validate_exposition(&text).unwrap();
        assert!(text.contains("threefive_jobs_by_rung_total{rung=\"parallel-3.5d\"} 1"));
        assert!(text.contains("threefive_events_total{level=\"warn\"} 1"));
        assert!(text.contains("threefive_engine_sweeps_total 1"));
    }

    #[test]
    fn stats_collector_exposes_consistent_identities() {
        let stats = Arc::new(ServiceStats::default());
        stats.offer(|| Ok(())).unwrap();
        stats.offer(|| Err(crate::job::Rejected::ShuttingDown)).ok();
        let m = ServeMetrics::new();
        m.registry
            .collector(Box::new(StatsCollector::new(Arc::clone(&stats))));
        let snap = m.registry.snapshot();
        let get = |name: &str| match snap.get(name).unwrap().samples[0].1 {
            MetricValue::Counter(v) => v,
            MetricValue::Gauge(v) => v as u64,
            _ => panic!("unexpected kind for {name}"),
        };
        let offered = get("threefive_jobs_offered_total");
        let accepted = get("threefive_jobs_accepted_total");
        let rejected = get("threefive_jobs_rejected_total");
        let in_flight = get("threefive_jobs_in_flight");
        assert_eq!(offered, accepted + rejected);
        assert_eq!(accepted, in_flight);
        threefive_metrics::validate_exposition(&m.exposition()).unwrap();
    }

    #[test]
    fn json_snapshot_shape_for_each_metric_kind() {
        let m = ServeMetrics::new();
        m.on_completed("serial", 0, 1.0);
        m.tune_db_entries.set(4);
        let doc = snapshot_to_json(&m.registry.snapshot());
        // Family -> object keyed by label value.
        let rung = doc.get("threefive_jobs_by_rung_total").unwrap();
        assert_eq!(rung.get("serial").and_then(Json::as_f64), Some(1.0));
        // Gauge -> number.
        assert_eq!(
            doc.get("threefive_tune_db_entries").and_then(Json::as_f64),
            Some(4.0)
        );
        // Histogram -> object with count/quantiles/buckets.
        let exec = doc.get(EXEC_METRIC).unwrap();
        assert_eq!(exec.get("count").and_then(Json::as_f64), Some(1.0));
        assert!(exec.get("p50_ns").and_then(Json::as_f64).is_some());
        match exec.get("buckets") {
            Some(Json::Arr(b)) => assert_eq!(b.len(), HistSpec::LATENCY.buckets),
            other => panic!("unexpected buckets {other:?}"),
        }
    }

    #[test]
    fn event_json_carries_typed_fields() {
        let m = ServeMetrics::new();
        m.event(
            Level::Info,
            "job_done",
            Some(5),
            vec![
                ("rung".into(), FieldValue::from("serial")),
                ("exec_ms".into(), FieldValue::from(1.25)),
            ],
        );
        let events = m.events.tail(10, Level::Debug);
        let doc = event_to_json(&events[0]);
        assert_eq!(doc.get("job_id").and_then(Json::as_f64), Some(5.0));
        assert_eq!(doc.get("rung").and_then(Json::as_str), Some("serial"));
        assert_eq!(doc.get("exec_ms").and_then(Json::as_f64), Some(1.25));
    }
}
