//! SIGINT/SIGTERM → graceful drain, without a libc crate.
//!
//! The offline build cannot add a signal-handling dependency, so this
//! module declares the single C function it needs (`signal(2)`) directly.
//! The handler body is async-signal-safe by construction: it stores one
//! `AtomicBool` and returns. The server's accept loop polls the flag and
//! begins the drain from ordinary Rust code.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown was requested (by signal or by
/// [`request_shutdown`]).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests a graceful drain from ordinary code (the `shutdown` protocol
/// command uses this; tests use it in place of delivering real signals).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Resets the flag. Test-only escape hatch: the flag is process-global,
/// and integration tests start several servers in one process.
pub fn reset_for_test() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Installs SIGINT and SIGTERM handlers that set the shutdown flag.
/// Safe to call more than once. No-op on non-Unix targets.
#[cfg(unix)]
pub fn install_handlers() {
    // Values from the Linux/POSIX ABI; stable for the platforms the
    // container targets.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store, no allocation, no
        // locks, no formatting.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // `signal(2)`: sighandler_t signal(int signum, sighandler_t
        // handler). Function pointers cross the FFI boundary as plain
        // addresses.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    // SAFETY: `signal` is the libc function of that name (the process is
    // always linked against libc on unix targets); the handler passed is
    // a valid `extern "C" fn(i32)` for the lifetime of the process, and
    // its body is async-signal-safe (one atomic store). The returned
    // previous handler is deliberately discarded.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// Installs SIGINT and SIGTERM handlers that set the shutdown flag.
/// Safe to call more than once. No-op on non-Unix targets.
#[cfg(not(unix))]
pub fn install_handlers() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset_toggle_the_flag() {
        reset_for_test();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_test();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn handlers_install_without_crashing() {
        install_handlers();
        install_handlers();
    }
}
