//! Length-prefixed JSON wire protocol.
//!
//! Each message is a 4-byte big-endian length followed by that many bytes
//! of UTF-8 JSON. The JSON layer reuses the bench crate's hand-rolled
//! tree (`threefive_bench::json::Json`) — the offline build has no serde.
//! Frames are capped at [`MAX_FRAME`]; a peer announcing a longer frame
//! is cut off before the daemon allocates for it.
//!
//! Checksums cross the wire as 16-digit lowercase hex **strings**
//! (`{:016x}`), never as JSON numbers: JSON numbers are f64 and cannot
//! represent every u64 bit pattern, and bit-identity is the whole point.
//!
//! ## Requests
//!
//! * `{"cmd":"ping"}` → `{"status":"ok","pong":true}`
//! * `{"cmd":"solve","workload":"stencil"|"lbm","scenario":...,"n":...,
//!   "steps":...,"dim_t":...,"tile":...,"deadline_ms":...,"priority":...}`
//! * `{"cmd":"stats"}` → pool/queue/counter snapshot plus a nested
//!   `metrics` object (the registry's JSON snapshot)
//! * `{"cmd":"metrics"}` → `{"exposition": "..."}`: the Prometheus
//!   text-format exposition as one string field
//! * `{"cmd":"events","limit":...,"level":"debug"|"info"|"warn"|"error"}`
//!   → `{"events":[...],"total_emitted":N}`: the newest matching entries
//!   of the structured event ring, oldest first (both fields optional;
//!   defaults: limit 100, level debug)
//! * `{"cmd":"chaos","tid":...,"step":...,"kind":"panic"|"stall",
//!   "stall_ms":...}` (or `{"cmd":"chaos","kind":"off"}`) — arms fault
//!   injection *inside the daemon process*
//! * `{"cmd":"shutdown"}` — begin draining; equivalent to SIGTERM

use std::io::{Read, Write};
use std::time::Duration;

use threefive_bench::json::Json;
use threefive_metrics::Level;

use crate::job::{Completed, JobFailure, JobId, JobSpec, LbmScenario, Rejected, Workload};

/// Maximum frame payload in bytes. Requests and responses are small
/// JSON documents; anything near this size is a protocol violation.
pub const MAX_FRAME: usize = 1 << 20;

/// Events returned by `{"cmd":"events"}` when no `limit` is given.
pub const DEFAULT_EVENT_LIMIT: usize = 100;

/// A protocol-level failure (I/O, framing, or malformed JSON).
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// Peer closed the connection cleanly between frames.
    Closed,
    /// Frame longer than [`MAX_FRAME`] or payload not valid JSON.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Closed => f.write_str("peer closed the connection"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame: 4-byte big-endian length, then the JSON text.
pub fn write_frame(w: &mut impl Write, doc: &Json) -> Result<(), WireError> {
    let payload = doc.to_string();
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "outgoing frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
            bytes.len()
        )));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, enforcing [`MAX_FRAME`]. `Err(Closed)` means the peer
/// hung up cleanly at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Json, WireError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Err(WireError::Closed),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "announced frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| WireError::Malformed("frame is not UTF-8".into()))?;
    Json::parse(text).map_err(|e| WireError::Malformed(e.to_string()))
}

/// A decoded client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Submit a solve job.
    Solve(JobSpec),
    /// Snapshot service counters.
    Stats,
    /// Fetch the Prometheus text-format exposition.
    Metrics,
    /// Fetch the newest structured events at or above a level.
    Events {
        /// Maximum entries returned (newest win; rendered oldest first).
        limit: usize,
        /// Lowest level included.
        min_level: Level,
    },
    /// Arm (or disarm, `kind: "off"`) fault injection in the daemon.
    Chaos(ChaosCmd),
    /// Begin graceful drain.
    Shutdown,
}

/// Fault-injection command carried by `cmd: chaos`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosCmd {
    /// Disarm any active fault plan.
    Off,
    /// Panic on worker `tid` at pipeline step `step` of the next run.
    Panic {
        /// Target worker thread id.
        tid: usize,
        /// Pipeline step ordinal.
        step: usize,
    },
    /// Stall worker `tid` at `step` for `stall` before proceeding.
    Stall {
        /// Target worker thread id.
        tid: usize,
        /// Pipeline step ordinal.
        step: usize,
        /// Stall duration.
        stall: Duration,
    },
}

fn get_usize(doc: &Json, key: &str) -> Result<usize, WireError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| WireError::Malformed(format!("missing or non-integer field '{key}'")))
}

/// Decodes a request document. Unknown commands and missing fields are
/// `Malformed` — the server answers those with a typed error response
/// rather than dropping the connection.
pub fn decode_request(doc: &Json) -> Result<Request, WireError> {
    let cmd = doc
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::Malformed("missing string field 'cmd'".into()))?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "events" => {
            let limit = match doc.get("limit") {
                None | Some(Json::Null) => DEFAULT_EVENT_LIMIT,
                Some(v) => v.as_u64().ok_or_else(|| {
                    WireError::Malformed("field 'limit' must be a non-negative integer".into())
                })? as usize,
            };
            let min_level = match doc.get("level") {
                None | Some(Json::Null) => Level::Debug,
                Some(v) => {
                    let name = v.as_str().ok_or_else(|| {
                        WireError::Malformed("field 'level' must be a string".into())
                    })?;
                    Level::parse(name).ok_or_else(|| {
                        WireError::Malformed(format!(
                            "unknown level '{name}' (expected debug, info, warn or error)"
                        ))
                    })?
                }
            };
            Ok(Request::Events { limit, min_level })
        }
        "shutdown" => Ok(Request::Shutdown),
        "chaos" => {
            let kind = doc
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| WireError::Malformed("missing string field 'kind'".into()))?;
            match kind {
                "off" => Ok(Request::Chaos(ChaosCmd::Off)),
                "panic" => Ok(Request::Chaos(ChaosCmd::Panic {
                    tid: get_usize(doc, "tid")?,
                    step: get_usize(doc, "step")?,
                })),
                "stall" => Ok(Request::Chaos(ChaosCmd::Stall {
                    tid: get_usize(doc, "tid")?,
                    step: get_usize(doc, "step")?,
                    stall: Duration::from_millis(get_usize(doc, "stall_ms")? as u64),
                })),
                other => Err(WireError::Malformed(format!(
                    "unknown chaos kind '{other}' (expected off, panic or stall)"
                ))),
            }
        }
        "solve" => {
            let workload = match doc.get("workload").and_then(Json::as_str) {
                Some("stencil") => Workload::Stencil,
                Some("lbm") => {
                    let name = doc.get("scenario").and_then(Json::as_str).ok_or_else(|| {
                        WireError::Malformed("lbm solve requires string field 'scenario'".into())
                    })?;
                    let sc = LbmScenario::parse(name).ok_or_else(|| {
                        WireError::Malformed(format!(
                            "unknown scenario '{name}' (expected box, cavity or channel)"
                        ))
                    })?;
                    Workload::Lbm(sc)
                }
                Some(other) => {
                    return Err(WireError::Malformed(format!(
                        "unknown workload '{other}' (expected stencil or lbm)"
                    )))
                }
                None => {
                    return Err(WireError::Malformed(
                        "missing string field 'workload'".into(),
                    ))
                }
            };
            Ok(Request::Solve(JobSpec {
                workload,
                n: get_usize(doc, "n")?,
                steps: get_usize(doc, "steps")?,
                dim_t: get_usize(doc, "dim_t")?,
                tile: get_usize(doc, "tile")?,
                deadline: Duration::from_millis(get_usize(doc, "deadline_ms")? as u64),
                priority: get_usize(doc, "priority")? as u8,
            }))
        }
        other => Err(WireError::Malformed(format!("unknown command '{other}'"))),
    }
}

/// Encodes a solve request (the client side of [`decode_request`]).
pub fn encode_solve(spec: &JobSpec) -> Json {
    let mut fields = vec![("cmd".into(), Json::str("solve"))];
    match spec.workload {
        Workload::Stencil => fields.push(("workload".into(), Json::str("stencil"))),
        Workload::Lbm(sc) => {
            fields.push(("workload".into(), Json::str("lbm")));
            fields.push(("scenario".into(), Json::str(sc.name())));
        }
    }
    fields.push(("n".into(), Json::num(spec.n as f64)));
    fields.push(("steps".into(), Json::num(spec.steps as f64)));
    fields.push(("dim_t".into(), Json::num(spec.dim_t as f64)));
    fields.push(("tile".into(), Json::num(spec.tile as f64)));
    fields.push((
        "deadline_ms".into(),
        Json::num(spec.deadline.as_millis() as f64),
    ));
    fields.push(("priority".into(), Json::num(f64::from(spec.priority))));
    Json::Obj(fields)
}

/// Encodes a metrics-exposition request.
pub fn encode_metrics() -> Json {
    Json::Obj(vec![("cmd".into(), Json::str("metrics"))])
}

/// Encodes an events query.
pub fn encode_events(limit: usize, min_level: Level) -> Json {
    Json::Obj(vec![
        ("cmd".into(), Json::str("events")),
        ("limit".into(), Json::num(limit as f64)),
        ("level".into(), Json::str(min_level.as_str())),
    ])
}

/// Encodes a chaos request.
pub fn encode_chaos(cmd: &ChaosCmd) -> Json {
    let mut fields = vec![("cmd".into(), Json::str("chaos"))];
    match cmd {
        ChaosCmd::Off => fields.push(("kind".into(), Json::str("off"))),
        ChaosCmd::Panic { tid, step } => {
            fields.push(("kind".into(), Json::str("panic")));
            fields.push(("tid".into(), Json::num(*tid as f64)));
            fields.push(("step".into(), Json::num(*step as f64)));
        }
        ChaosCmd::Stall { tid, step, stall } => {
            fields.push(("kind".into(), Json::str("stall")));
            fields.push(("tid".into(), Json::num(*tid as f64)));
            fields.push(("step".into(), Json::num(*step as f64)));
            fields.push(("stall_ms".into(), Json::num(stall.as_millis() as f64)));
        }
    }
    Json::Obj(fields)
}

/// A decoded server response to a solve (or other) request.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Generic success (ping/chaos/shutdown acks, stats payloads ride in
    /// the raw document).
    Ok(Json),
    /// The job completed; checksum is bit-exact.
    Done {
        /// Daemon-assigned job id.
        job_id: JobId,
        /// Completion details.
        completed: Completed,
    },
    /// Admission refused the request (no job id was assigned).
    Rejected(Rejected),
    /// An admitted job failed with a typed reason.
    Failed {
        /// Daemon-assigned job id.
        job_id: JobId,
        /// Why the job could not be served.
        failure: JobFailure,
    },
    /// Protocol-level error (unknown command, bad fields).
    BadRequest {
        /// Diagnosis echoed to the peer.
        detail: String,
    },
}

/// Encodes a response document.
pub fn encode_response(resp: &Response) -> Json {
    match resp {
        Response::Ok(doc) => {
            let mut fields = vec![("status".into(), Json::str("ok"))];
            if let Json::Obj(extra) = doc {
                fields.extend(extra.iter().cloned());
            }
            Json::Obj(fields)
        }
        Response::Done { job_id, completed } => Json::Obj(vec![
            ("status".into(), Json::str("done")),
            ("job_id".into(), Json::num(*job_id as f64)),
            ("rung".into(), Json::str(completed.rung.clone())),
            (
                "downgrades".into(),
                Json::num(f64::from(completed.downgrades)),
            ),
            // Hex string, not a number: u64 does not fit in f64.
            (
                "checksum".into(),
                Json::str(format!("{:016x}", completed.checksum)),
            ),
            (
                "barrier_share".into(),
                completed.barrier_share.map_or(Json::Null, Json::num),
            ),
            ("exec_ms".into(), Json::num(completed.exec_ms)),
        ]),
        Response::Rejected(r) => {
            let mut fields = vec![
                ("status".into(), Json::str("rejected")),
                ("reason".into(), Json::str(r.kind())),
                ("detail".into(), Json::str(r.to_string())),
            ];
            match r {
                Rejected::QueueFull { capacity } => {
                    fields.push(("capacity".into(), Json::num(*capacity as f64)));
                }
                Rejected::GridTooLarge { cells, max_cells } => {
                    fields.push(("cells".into(), Json::num(*cells as f64)));
                    fields.push(("max_cells".into(), Json::num(*max_cells as f64)));
                }
                Rejected::BadPlan { .. } | Rejected::ShuttingDown => {}
            }
            Json::Obj(fields)
        }
        Response::Failed { job_id, failure } => {
            let mut fields = vec![
                ("status".into(), Json::str("failed")),
                ("job_id".into(), Json::num(*job_id as f64)),
                ("reason".into(), Json::str(failure.kind())),
                ("detail".into(), Json::str(failure.to_string())),
            ];
            if let JobFailure::DeadlineExpired { deadline_ms } = failure {
                fields.push(("deadline_ms".into(), Json::num(*deadline_ms as f64)));
            }
            Json::Obj(fields)
        }
        Response::BadRequest { detail } => Json::Obj(vec![
            ("status".into(), Json::str("bad_request")),
            ("detail".into(), Json::str(detail.clone())),
        ]),
    }
}

/// Decodes a response document (the client side of [`encode_response`]).
pub fn decode_response(doc: &Json) -> Result<Response, WireError> {
    let status = doc
        .get("status")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::Malformed("missing string field 'status'".into()))?;
    let detail = || {
        doc.get("detail")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string()
    };
    match status {
        "ok" => Ok(Response::Ok(doc.clone())),
        "bad_request" => Ok(Response::BadRequest { detail: detail() }),
        "done" => {
            let job_id = doc
                .get("job_id")
                .and_then(Json::as_u64)
                .ok_or_else(|| WireError::Malformed("done response missing 'job_id'".into()))?;
            let checksum_hex = doc
                .get("checksum")
                .and_then(Json::as_str)
                .ok_or_else(|| WireError::Malformed("done response missing 'checksum'".into()))?;
            let checksum = u64::from_str_radix(checksum_hex, 16)
                .map_err(|_| WireError::Malformed("checksum is not 16-digit hex".into()))?;
            Ok(Response::Done {
                job_id,
                completed: Completed {
                    rung: doc
                        .get("rung")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    downgrades: doc
                        .get("downgrades")
                        .and_then(Json::as_u64)
                        .unwrap_or_default() as u32,
                    checksum,
                    barrier_share: doc.get("barrier_share").and_then(Json::as_f64),
                    exec_ms: doc.get("exec_ms").and_then(Json::as_f64).unwrap_or(0.0),
                },
            })
        }
        "rejected" => {
            let reason = doc
                .get("reason")
                .and_then(Json::as_str)
                .ok_or_else(|| WireError::Malformed("rejected response missing 'reason'".into()))?;
            let rejected = match reason {
                "QueueFull" => Rejected::QueueFull {
                    capacity: doc.get("capacity").and_then(Json::as_u64).unwrap_or(0) as usize,
                },
                "GridTooLarge" => Rejected::GridTooLarge {
                    cells: doc.get("cells").and_then(Json::as_u64).unwrap_or(0),
                    max_cells: doc.get("max_cells").and_then(Json::as_u64).unwrap_or(0),
                },
                "ShuttingDown" => Rejected::ShuttingDown,
                _ => Rejected::BadPlan { detail: detail() },
            };
            Ok(Response::Rejected(rejected))
        }
        "failed" => {
            let job_id = doc
                .get("job_id")
                .and_then(Json::as_u64)
                .ok_or_else(|| WireError::Malformed("failed response missing 'job_id'".into()))?;
            let reason = doc.get("reason").and_then(Json::as_str).unwrap_or("Failed");
            let failure = match reason {
                "DeadlineExpired" => JobFailure::DeadlineExpired {
                    deadline_ms: doc.get("deadline_ms").and_then(Json::as_u64).unwrap_or(0),
                },
                "PoolExhausted" => JobFailure::PoolExhausted,
                _ => JobFailure::Failed { detail: detail() },
            };
            Ok(Response::Failed { job_id, failure })
        }
        other => Err(WireError::Malformed(format!(
            "unknown response status '{other}'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn spec() -> JobSpec {
        JobSpec {
            workload: Workload::Lbm(LbmScenario::Cavity),
            n: 24,
            steps: 6,
            dim_t: 3,
            tile: 16,
            deadline: Duration::from_millis(750),
            priority: 2,
        }
    }

    #[test]
    fn frames_round_trip() {
        let doc = encode_solve(&spec());
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        // Two frames back to back must both decode.
        write_frame(
            &mut buf,
            &Json::Obj(vec![("cmd".into(), Json::str("ping"))]),
        )
        .unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), doc);
        assert_eq!(
            decode_request(&read_frame(&mut r).unwrap()).unwrap(),
            Request::Ping
        );
        assert!(matches!(read_frame(&mut r), Err(WireError::Closed)));
    }

    #[test]
    fn solve_request_round_trips() {
        let s = spec();
        let decoded = decode_request(&encode_solve(&s)).unwrap();
        assert_eq!(decoded, Request::Solve(s));
    }

    #[test]
    fn oversized_announced_frame_is_refused_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
    }

    #[test]
    fn unknown_command_and_missing_fields_are_malformed() {
        let doc = Json::Obj(vec![("cmd".into(), Json::str("explode"))]);
        assert!(decode_request(&doc).is_err());
        let doc = Json::Obj(vec![
            ("cmd".into(), Json::str("solve")),
            ("workload".into(), Json::str("stencil")),
        ]);
        let err = decode_request(&doc).unwrap_err();
        assert!(err.to_string().contains("'n'"), "{err}");
    }

    #[test]
    fn checksum_survives_as_hex_string() {
        // A value f64 cannot represent exactly: 2^63 + 1.
        let checksum = (1u64 << 63) + 1;
        let resp = Response::Done {
            job_id: 7,
            completed: Completed {
                rung: "parallel35d".into(),
                downgrades: 1,
                checksum,
                barrier_share: Some(0.25),
                exec_ms: 12.5,
            },
        };
        let doc = Json::parse(&encode_response(&resp).to_string()).unwrap();
        match decode_response(&doc).unwrap() {
            Response::Done { completed, .. } => assert_eq!(completed.checksum, checksum),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejection_responses_carry_reason_kind() {
        for r in [
            Rejected::QueueFull { capacity: 4 },
            Rejected::GridTooLarge {
                cells: 1,
                max_cells: 0,
            },
            Rejected::BadPlan {
                detail: "dimT=0".into(),
            },
            Rejected::ShuttingDown,
        ] {
            let doc = encode_response(&Response::Rejected(r.clone()));
            assert_eq!(doc.get("reason").unwrap().as_str().unwrap(), r.kind());
            match decode_response(&doc).unwrap() {
                Response::Rejected(back) => assert_eq!(back.kind(), r.kind()),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn metrics_and_events_requests_round_trip() {
        assert_eq!(decode_request(&encode_metrics()).unwrap(), Request::Metrics);
        assert_eq!(
            decode_request(&encode_events(25, Level::Warn)).unwrap(),
            Request::Events {
                limit: 25,
                min_level: Level::Warn,
            }
        );
        // Bare command applies the documented defaults.
        let bare = Json::Obj(vec![("cmd".into(), Json::str("events"))]);
        assert_eq!(
            decode_request(&bare).unwrap(),
            Request::Events {
                limit: DEFAULT_EVENT_LIMIT,
                min_level: Level::Debug,
            }
        );
        // An unknown level is a typed protocol error, not a panic.
        let bad = Json::Obj(vec![
            ("cmd".into(), Json::str("events")),
            ("level".into(), Json::str("loud")),
        ]);
        assert!(decode_request(&bad).is_err());
    }

    #[test]
    fn chaos_commands_round_trip() {
        for cmd in [
            ChaosCmd::Off,
            ChaosCmd::Panic { tid: 1, step: 2 },
            ChaosCmd::Stall {
                tid: 0,
                step: 3,
                stall: Duration::from_millis(40),
            },
        ] {
            let decoded = decode_request(&encode_chaos(&cmd)).unwrap();
            assert_eq!(decoded, Request::Chaos(cmd));
        }
    }
}
