//! Service-wide admission accounting, exported over the `stats` protocol
//! command and the Prometheus exposition.
//!
//! The counters form two identities that make silent drops structurally
//! unrepresentable:
//!
//! * `offered == accepted + rejected`
//! * `accepted == completed + failed + timed_out + in_flight`
//!
//! PR 6 kept these as seven independent relaxed atomics, which meant the
//! identities only held *eventually* — a scrape between `offered += 1`
//! and the matching `accepted += 1` saw them violated. Now every state
//! transition updates all of its counters under one short mutex, and
//! [`ServiceStats::snapshot`] reads under the same mutex, so **the
//! identities hold at every scrape** and are machine-checkable from a
//! single [`Counts`] value ([`Counts::check_identities`]). The lock is
//! held for a handful of integer additions per job — noise against the
//! multi-millisecond solves it accounts for.

use std::sync::{Mutex, PoisonError};

use threefive_bench::json::Json;

use crate::job::Rejected;

/// One consistent reading of the admission counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// Solve requests received (before admission).
    pub offered: u64,
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Typed admission refusals (all reasons).
    pub rejected: u64,
    /// Jobs that completed with a checksum.
    pub completed: u64,
    /// Admitted jobs that failed for a non-deadline reason.
    pub failed: u64,
    /// Admitted jobs whose deadline expired before a result.
    pub timed_out: u64,
    /// Jobs admitted but not yet resolved (queued or executing).
    pub in_flight: u64,
    /// Chaos commands processed.
    pub chaos_cmds: u64,
}

impl Counts {
    /// Verifies both accounting identities; returns a description of the
    /// first violation.
    pub fn check_identities(&self) -> Result<(), String> {
        if self.offered != self.accepted + self.rejected {
            return Err(format!(
                "offered ({}) != accepted ({}) + rejected ({})",
                self.offered, self.accepted, self.rejected
            ));
        }
        let resolved = self.completed + self.failed + self.timed_out;
        if self.accepted != resolved + self.in_flight {
            return Err(format!(
                "accepted ({}) != completed ({}) + failed ({}) + timed_out ({}) + in_flight ({})",
                self.accepted, self.completed, self.failed, self.timed_out, self.in_flight
            ));
        }
        Ok(())
    }

    /// Renders as JSON object fields (merged into the `stats` response
    /// alongside pool and queue gauges).
    pub fn to_json(&self) -> Vec<(String, Json)> {
        vec![
            ("offered".into(), Json::num(self.offered as f64)),
            ("accepted".into(), Json::num(self.accepted as f64)),
            ("rejected".into(), Json::num(self.rejected as f64)),
            ("completed".into(), Json::num(self.completed as f64)),
            ("failed".into(), Json::num(self.failed as f64)),
            ("timed_out".into(), Json::num(self.timed_out as f64)),
            ("in_flight".into(), Json::num(self.in_flight as f64)),
            ("chaos_cmds".into(), Json::num(self.chaos_cmds as f64)),
        ]
    }
}

/// The daemon's admission accounting. All transitions are atomic with
/// respect to [`snapshot`](Self::snapshot).
#[derive(Debug, Default)]
pub struct ServiceStats {
    inner: Mutex<Counts>,
}

impl ServiceStats {
    fn lock(&self) -> std::sync::MutexGuard<'_, Counts> {
        // Counts are plain integers: a panic between updates cannot leave
        // them torn, so a poisoned lock is safe to keep using.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs an admission attempt (typically `queue.push`) **inside** the
    /// accounting critical section and records the outcome as one
    /// transition: `offered+accepted+in_flight` on success,
    /// `offered+rejected` on refusal. Holding the lock across the push
    /// closes the race where a dispatcher resolves the job before its
    /// acceptance was recorded.
    pub fn offer<F>(&self, admit: F) -> Result<(), Rejected>
    where
        F: FnOnce() -> Result<(), Rejected>,
    {
        let mut c = self.lock();
        let result = admit();
        c.offered += 1;
        match &result {
            Ok(()) => {
                c.accepted += 1;
                c.in_flight += 1;
            }
            Err(_) => c.rejected += 1,
        }
        result
    }

    /// Records a refusal that never reached the queue (validation
    /// failure, draining).
    pub fn offer_rejected(&self) {
        let mut c = self.lock();
        c.offered += 1;
        c.rejected += 1;
    }

    fn resolve(&self, f: impl FnOnce(&mut Counts)) {
        let mut c = self.lock();
        debug_assert!(c.in_flight > 0, "resolving a job that was never accepted");
        c.in_flight = c.in_flight.saturating_sub(1);
        f(&mut c);
    }

    /// An admitted job completed with a checksum.
    pub fn job_completed(&self) {
        self.resolve(|c| c.completed += 1);
    }

    /// An admitted job failed for a non-deadline reason.
    pub fn job_failed(&self) {
        self.resolve(|c| c.failed += 1);
    }

    /// An admitted job ran out of deadline (queued, at checkout, or
    /// executing).
    pub fn job_timed_out(&self) {
        self.resolve(|c| c.timed_out += 1);
    }

    /// A chaos command was processed.
    pub fn chaos_cmd(&self) {
        self.lock().chaos_cmds += 1;
    }

    /// One consistent reading of every counter.
    pub fn snapshot(&self) -> Counts {
        *self.lock()
    }

    /// Snapshot as JSON object fields.
    pub fn to_json(&self) -> Vec<(String, Json)> {
        self.snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_keep_identities_at_every_step() {
        let s = ServiceStats::default();
        assert!(s.snapshot().check_identities().is_ok());
        s.offer(|| Ok(())).unwrap();
        assert!(s.snapshot().check_identities().is_ok());
        assert_eq!(s.snapshot().in_flight, 1);
        s.offer(|| Err(Rejected::ShuttingDown)).unwrap_err();
        s.offer_rejected();
        assert!(s.snapshot().check_identities().is_ok());
        s.job_completed();
        let c = s.snapshot();
        c.check_identities().unwrap();
        assert_eq!(
            (c.offered, c.accepted, c.rejected, c.completed, c.in_flight),
            (3, 1, 2, 1, 0)
        );
    }

    #[test]
    fn every_resolution_drains_in_flight() {
        let s = ServiceStats::default();
        for _ in 0..3 {
            s.offer(|| Ok(())).unwrap();
        }
        s.job_completed();
        s.job_failed();
        s.job_timed_out();
        let c = s.snapshot();
        c.check_identities().unwrap();
        assert_eq!(c.in_flight, 0);
        assert_eq!((c.completed, c.failed, c.timed_out), (1, 1, 1));
    }

    #[test]
    fn identity_checker_reports_violations() {
        let c = Counts {
            offered: 2,
            accepted: 1,
            rejected: 0,
            ..Counts::default()
        };
        assert!(c.check_identities().unwrap_err().contains("offered"));
        let c = Counts {
            offered: 1,
            accepted: 1,
            completed: 1,
            in_flight: 1,
            ..Counts::default()
        };
        assert!(c.check_identities().unwrap_err().contains("in_flight"));
    }

    #[test]
    fn counters_export_as_json() {
        let s = ServiceStats::default();
        s.offer(|| Ok(())).unwrap();
        s.offer(|| Ok(())).unwrap();
        s.job_completed();
        s.chaos_cmd();
        let fields = s.to_json();
        let get = |k: &str| {
            fields
                .iter()
                .find(|(name, _)| name == k)
                .and_then(|(_, v)| v.as_f64())
                .unwrap()
        };
        assert_eq!(get("offered"), 2.0);
        assert_eq!(get("completed"), 1.0);
        assert_eq!(get("in_flight"), 1.0);
        assert_eq!(get("rejected"), 0.0);
        assert_eq!(get("chaos_cmds"), 1.0);
    }
}
