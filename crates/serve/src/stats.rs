//! Service-wide counters, exported over the `stats` protocol command.

use std::sync::atomic::{AtomicU64, Ordering};

use threefive_bench::json::Json;

/// Monotonic counters for the daemon's lifetime. All loads/stores are
/// relaxed: these are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Solve requests received (before admission).
    pub offered: AtomicU64,
    /// Jobs admitted to the queue.
    pub accepted: AtomicU64,
    /// Typed admission refusals (all reasons).
    pub rejected: AtomicU64,
    /// Jobs that completed with a checksum.
    pub completed: AtomicU64,
    /// Admitted jobs that failed for a non-deadline reason.
    pub failed: AtomicU64,
    /// Admitted jobs whose deadline expired before a result.
    pub timed_out: AtomicU64,
    /// Chaos commands processed.
    pub chaos_cmds: AtomicU64,
}

impl ServiceStats {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as a JSON object fragment (merged into the `stats`
    /// response alongside pool and queue gauges).
    pub fn to_json(&self) -> Vec<(String, Json)> {
        let read = |c: &AtomicU64| Json::num(c.load(Ordering::Relaxed) as f64);
        vec![
            ("offered".into(), read(&self.offered)),
            ("accepted".into(), read(&self.accepted)),
            ("rejected".into(), read(&self.rejected)),
            ("completed".into(), read(&self.completed)),
            ("failed".into(), read(&self.failed)),
            ("timed_out".into(), read(&self.timed_out)),
            ("chaos_cmds".into(), read(&self.chaos_cmds)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_export_as_json() {
        let s = ServiceStats::default();
        ServiceStats::bump(&s.offered);
        ServiceStats::bump(&s.offered);
        ServiceStats::bump(&s.completed);
        let fields = s.to_json();
        let get = |k: &str| {
            fields
                .iter()
                .find(|(name, _)| name == k)
                .and_then(|(_, v)| v.as_f64())
                .unwrap()
        };
        assert_eq!(get("offered"), 2.0);
        assert_eq!(get("completed"), 1.0);
        assert_eq!(get("rejected"), 0.0);
    }
}
