//! Synchronous client for the solver service.
//!
//! One outstanding request per connection: each helper writes one frame
//! and blocks for one response frame. The load generator opens one
//! client per worker thread, which keeps request/response matching
//! trivial (and is exactly the multi-tenant pattern the daemon is built
//! to isolate).

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use threefive_bench::json::Json;
use threefive_metrics::Level;

use crate::job::JobSpec;
use crate::protocol::{
    decode_response, encode_chaos, encode_events, encode_metrics, encode_solve, read_frame,
    write_frame, ChaosCmd, Response, WireError,
};

/// A connected tenant.
pub struct ServiceClient {
    stream: TcpStream,
}

impl ServiceClient {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Bounds how long any single call may block on the daemon; `None`
    /// restores indefinite blocking.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn roundtrip(&mut self, doc: &Json) -> Result<Response, WireError> {
        write_frame(&mut self.stream, doc)?;
        let resp = read_frame(&mut self.stream)?;
        decode_response(&resp)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.roundtrip(&Json::Obj(vec![("cmd".into(), Json::str("ping"))]))? {
            Response::Ok(_) => Ok(()),
            other => Err(WireError::Malformed(format!(
                "unexpected ping response {other:?}"
            ))),
        }
    }

    /// Submits a solve and blocks until its final response (done, failed
    /// or rejected). The block spans queue wait plus execution, so size
    /// any read timeout to the job's deadline plus slack.
    pub fn solve(&mut self, spec: &JobSpec) -> Result<Response, WireError> {
        self.roundtrip(&encode_solve(spec))
    }

    /// Snapshot of the daemon's counters and gauges.
    pub fn stats(&mut self) -> Result<Json, WireError> {
        match self.roundtrip(&Json::Obj(vec![("cmd".into(), Json::str("stats"))]))? {
            Response::Ok(doc) => Ok(doc),
            other => Err(WireError::Malformed(format!(
                "unexpected stats response {other:?}"
            ))),
        }
    }

    /// The daemon's Prometheus text-format exposition.
    pub fn metrics_exposition(&mut self) -> Result<String, WireError> {
        match self.roundtrip(&encode_metrics())? {
            Response::Ok(doc) => doc
                .get("exposition")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    WireError::Malformed("metrics response missing 'exposition'".into())
                }),
            other => Err(WireError::Malformed(format!(
                "unexpected metrics response {other:?}"
            ))),
        }
    }

    /// The newest `limit` structured events at or above `min_level`,
    /// oldest first, as raw JSON objects.
    pub fn events(&mut self, limit: usize, min_level: Level) -> Result<Vec<Json>, WireError> {
        match self.roundtrip(&encode_events(limit, min_level))? {
            Response::Ok(doc) => match doc.get("events") {
                Some(Json::Arr(items)) => Ok(items.clone()),
                _ => Err(WireError::Malformed(
                    "events response missing 'events' array".into(),
                )),
            },
            other => Err(WireError::Malformed(format!(
                "unexpected events response {other:?}"
            ))),
        }
    }

    /// Arms (or disarms) fault injection inside the daemon process.
    pub fn chaos(&mut self, cmd: &ChaosCmd) -> Result<(), WireError> {
        match self.roundtrip(&encode_chaos(cmd))? {
            Response::Ok(_) => Ok(()),
            other => Err(WireError::Malformed(format!(
                "unexpected chaos response {other:?}"
            ))),
        }
    }

    /// Requests a graceful drain (equivalent to SIGTERM).
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.roundtrip(&Json::Obj(vec![("cmd".into(), Json::str("shutdown"))]))? {
            Response::Ok(_) => Ok(()),
            other => Err(WireError::Malformed(format!(
                "unexpected shutdown response {other:?}"
            ))),
        }
    }
}
