//! The daemon: accept loop, connection handlers, dispatcher threads, the
//! metrics scrape listener and the graceful-drain state machine.
//!
//! Thread layout per running server:
//!
//! * the accept loop (caller's thread, inside [`Server::run`]);
//! * `dispatchers` dispatcher threads running
//!   [`run_dispatcher`];
//! * one reader + one writer thread per live connection, joined on exit;
//! * optionally one scrape thread answering plaintext `GET /metrics`
//!   requests on a second listener ([`ServerConfig::metrics_addr`]).
//!
//! Drain protocol: a SIGINT/SIGTERM (or the `shutdown` command) sets the
//! process-wide flag; the accept loop closes the admission queue — from
//! that instant new solves get a typed `ShuttingDown` rejection while
//! already-admitted jobs keep draining. The accept loop keeps serving
//! connections (so tenants can still collect results and rejections)
//! until every dispatcher has exited, which is the proof that every
//! admitted job was answered; then connection threads are stopped and
//! joined and [`Server::run`] returns `Ok(())`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use threefive_bench::json::Json;
use threefive_core::faults::{self, FaultGuard, FaultKind, FaultPlan};
use threefive_metrics::{FieldValue, Level};
use threefive_sync::TeamPool;

use crate::dispatch::{run_dispatcher, JobRunner, ReplySink};
use crate::job::{AdmissionLimits, JobId, Rejected};
use crate::metrics::{
    event_to_json, snapshot_to_json, PoolQueueCollector, ServeMetrics, StatsCollector,
};
use crate::protocol::{
    decode_request, encode_response, write_frame, ChaosCmd, Request, Response, WireError, MAX_FRAME,
};
use crate::queue::{AdmissionQueue, QueuedJob};
use crate::signal;
use crate::stats::ServiceStats;

/// Tuning knobs for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7535` (`:0` for an ephemeral port).
    pub addr: String,
    /// Optional second listener answering plaintext HTTP `GET /metrics`
    /// scrapes with the Prometheus exposition (`:0` for ephemeral).
    pub metrics_addr: Option<String>,
    /// Teams in the pool (= jobs that can execute concurrently).
    pub teams: usize,
    /// Worker threads per team.
    pub threads_per_team: usize,
    /// Admission queue capacity across all priority classes.
    pub queue_capacity: usize,
    /// Dispatcher threads (usually == `teams`).
    pub dispatchers: usize,
    /// Per-job admission limits.
    pub limits: AdmissionLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            metrics_addr: None,
            teams: 2,
            threads_per_team: 2,
            queue_capacity: 64,
            dispatchers: 2,
            limits: AdmissionLimits::default(),
        }
    }
}

/// Routes dispatcher responses back to the connection that submitted the
/// job. A connection that vanished mid-job simply loses its response —
/// the counters still record the outcome.
struct Router {
    routes: Mutex<HashMap<u64, mpsc::Sender<Json>>>,
}

impl Router {
    fn register(&self, conn: u64, tx: mpsc::Sender<Json>) {
        self.routes.lock().unwrap().insert(conn, tx);
    }

    fn deregister(&self, conn: u64) {
        self.routes.lock().unwrap().remove(&conn);
    }
}

impl ReplySink for Router {
    fn send(&self, reply_to: u64, _job_id: JobId, resp: Response) {
        let doc = encode_response(&resp);
        let routes = self.routes.lock().unwrap();
        if let Some(tx) = routes.get(&reply_to) {
            // A closed channel means the tenant hung up; nothing to do.
            let _ = tx.send(doc);
        }
    }
}

struct Inner {
    pool: Arc<TeamPool>,
    queue: Arc<AdmissionQueue>,
    stats: Arc<ServiceStats>,
    metrics: Arc<ServeMetrics>,
    router: Router,
    runner: Arc<dyn JobRunner>,
    limits: AdmissionLimits,
    next_job_id: AtomicU64,
    next_conn_id: AtomicU64,
    live_dispatchers: AtomicUsize,
    /// Set once every dispatcher and the accept loop are done; readers
    /// and writers poll it to exit.
    stopped: std::sync::atomic::AtomicBool,
    /// The currently armed chaos fault, if any. Replacing it disarms the
    /// previous plan first (`faults::inject` forbids double-arming).
    chaos: Mutex<Option<FaultGuard>>,
}

impl Inner {
    fn arm_chaos(&self, cmd: &ChaosCmd) {
        let mut slot = self.chaos.lock().unwrap();
        // Drop (disarm) any previous plan before arming the next one.
        *slot = None;
        let plan = match cmd {
            ChaosCmd::Off => return,
            ChaosCmd::Panic { tid, step } => FaultPlan {
                tid: *tid,
                step: *step,
                kind: FaultKind::Panic,
            },
            ChaosCmd::Stall { tid, step, stall } => FaultPlan {
                tid: *tid,
                step: *step,
                kind: FaultKind::Stall(*stall),
            },
        };
        *slot = Some(faults::inject(plan));
    }

    fn stats_doc(&self) -> Json {
        // One locked snapshot for the flat counters, so the accounting
        // identities hold inside every response (and are pre-checked
        // here so scrapers get a verdict without re-deriving it).
        let counts = self.stats.snapshot();
        let identities = counts.check_identities();
        let mut fields = counts.to_json();
        fields.push(("queue_len".into(), Json::num(self.queue.len() as f64)));
        fields.push((
            "queue_capacity".into(),
            Json::num(self.queue.capacity() as f64),
        ));
        fields.push((
            "pool_capacity".into(),
            Json::num(self.pool.capacity() as f64),
        ));
        fields.push(("pool_idle".into(), Json::num(self.pool.idle() as f64)));
        fields.push((
            "pool_quarantined".into(),
            Json::num(self.pool.quarantined() as f64),
        ));
        fields.push(("pool_leased".into(), Json::num(self.pool.leased() as f64)));
        fields.push((
            "pool_isolations".into(),
            Json::num(self.pool.isolation_count() as f64),
        ));
        fields.push((
            "pool_heals".into(),
            Json::num(self.pool.heal_count() as f64),
        ));
        fields.push(("draining".into(), Json::Bool(signal::shutdown_requested())));
        fields.push(("identities_ok".into(), Json::Bool(identities.is_ok())));
        if let Err(violation) = identities {
            fields.push(("identities_err".into(), Json::str(violation)));
        }
        fields.push((
            "metrics".into(),
            snapshot_to_json(&self.metrics.registry.snapshot()),
        ));
        Json::Obj(fields)
    }
}

/// A bound (not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    inner: Arc<Inner>,
    dispatchers: usize,
}

impl Server {
    /// Binds the listen socket and builds the team pool (workers spawn
    /// here, once, and persist for the daemon's lifetime) with a fresh
    /// enabled metrics plane.
    pub fn bind(config: ServerConfig, runner: Arc<dyn JobRunner>) -> std::io::Result<Self> {
        Self::bind_with_metrics(config, runner, ServeMetrics::new())
    }

    /// [`bind`](Self::bind) with a caller-supplied metrics plane (the
    /// facade shares it with its job runner so engine observer totals
    /// and tune-DB hits land in the same registry).
    pub fn bind_with_metrics(
        config: ServerConfig,
        runner: Arc<dyn JobRunner>,
        metrics: Arc<ServeMetrics>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let pool = Arc::new(TeamPool::new(config.teams, config.threads_per_team));
        let queue = Arc::new(AdmissionQueue::new(config.queue_capacity));
        let stats = Arc::new(ServiceStats::default());
        metrics
            .registry
            .collector(Box::new(StatsCollector::new(Arc::clone(&stats))));
        metrics.registry.collector(Box::new(PoolQueueCollector::new(
            Arc::clone(&pool),
            Arc::clone(&queue),
        )));
        let inner = Arc::new(Inner {
            pool,
            queue,
            stats,
            metrics,
            router: Router {
                routes: Mutex::new(HashMap::new()),
            },
            runner,
            limits: config.limits,
            next_job_id: AtomicU64::new(1),
            next_conn_id: AtomicU64::new(1),
            live_dispatchers: AtomicUsize::new(0),
            stopped: std::sync::atomic::AtomicBool::new(false),
            chaos: Mutex::new(None),
        });
        Ok(Self {
            listener,
            metrics_listener,
            inner,
            dispatchers: config.dispatchers.max(1),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound scrape address, if a metrics listener was configured.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The daemon's metrics plane (registry + event log).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// Runs the daemon until a graceful shutdown completes. Returns
    /// `Ok(())` only after every dispatcher, connection and scrape
    /// thread has been joined — no detached threads survive this call.
    pub fn run(self) -> std::io::Result<()> {
        self.inner.metrics.event(
            Level::Info,
            "server_started",
            None,
            vec![
                (
                    "addr".to_string(),
                    FieldValue::from(self.local_addr().map(|a| a.to_string()).unwrap_or_default()),
                ),
                (
                    "dispatchers".to_string(),
                    FieldValue::from(self.dispatchers as u64),
                ),
            ],
        );
        let mut dispatcher_handles = Vec::new();
        for i in 0..self.dispatchers {
            let inner = Arc::clone(&self.inner);
            inner.live_dispatchers.fetch_add(1, Ordering::SeqCst);
            dispatcher_handles.push(
                std::thread::Builder::new()
                    .name(format!("dispatch-{i}"))
                    .spawn(move || {
                        run_dispatcher(
                            &inner.queue,
                            &inner.pool,
                            inner.runner.as_ref(),
                            &inner.stats,
                            &inner.metrics,
                            &inner.router,
                        );
                        inner.live_dispatchers.fetch_sub(1, Ordering::SeqCst);
                    })?,
            );
        }
        let scrape_handle = match self.metrics_listener {
            Some(listener) => {
                let inner = Arc::clone(&self.inner);
                Some(
                    std::thread::Builder::new()
                        .name("metrics-scrape".into())
                        .spawn(move || serve_scrapes(listener, &inner))?,
                )
            }
            None => None,
        };

        let mut conn_handles = Vec::new();
        let mut draining = false;
        loop {
            if !draining && signal::shutdown_requested() {
                draining = true;
                // From here on `queue.push` answers `ShuttingDown`;
                // already-admitted jobs keep draining.
                self.inner.queue.close();
                self.inner
                    .metrics
                    .event(Level::Info, "drain_started", None, Vec::new());
            }
            if draining && self.inner.live_dispatchers.load(Ordering::SeqCst) == 0 {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let inner = Arc::clone(&self.inner);
                    // ORDERING: Relaxed — pure ID allocation; uniqueness
                    // comes from RMW atomicity, no ordering needed.
                    let id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
                    conn_handles.push(
                        std::thread::Builder::new()
                            .name(format!("conn-{id}"))
                            .spawn(move || handle_connection(inner, stream, id))?,
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }

        for h in dispatcher_handles {
            let _ = h.join();
        }
        self.inner
            .metrics
            .event(Level::Info, "drain_complete", None, Vec::new());
        // Dispatchers are gone, so all responses are in the connection
        // channels; now stop the connection threads and flush.
        self.inner.stopped.store(true, Ordering::SeqCst);
        for h in conn_handles {
            let _ = h.join();
        }
        if let Some(h) = scrape_handle {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Answers scrape connections on the metrics listener with an HTTP/1.0
/// response carrying the Prometheus exposition. The request itself is
/// read (to drain the socket) but not parsed: every connection gets the
/// full exposition, which is what Prometheus' text scraper needs.
fn serve_scrapes(listener: TcpListener, inner: &Arc<Inner>) {
    loop {
        if inner.stopped.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let body = inner.metrics.exposition();
                let head = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                );
                let _ = stream
                    .write_all(head.as_bytes())
                    .and_then(|()| stream.write_all(body.as_bytes()));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => return,
        }
    }
}

/// Reads length-prefixed requests from one tenant connection; immediate
/// responses and dispatcher results share the connection's outbound
/// channel, serialized by a dedicated writer thread.
fn handle_connection(inner: Arc<Inner>, stream: TcpStream, conn_id: u64) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // A response frame leaves as two writes (length prefix, then body);
    // without TCP_NODELAY, Nagle holds the body until the peer's delayed
    // ACK and every reply stalls ~40 ms even on loopback. Found by
    // `loadgen --verify-latency` disagreeing with the server-side
    // end-to-end histogram by exactly that margin.
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let (tx, rx) = mpsc::channel::<Json>();
    inner.router.register(conn_id, tx.clone());

    let writer_inner = Arc::clone(&inner);
    let writer = std::thread::spawn(move || {
        let mut out = write_half;
        loop {
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(doc) => {
                    if write_frame(&mut out, &doc).is_err() {
                        return;
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if writer_inner.stopped.load(Ordering::SeqCst) {
                        // Flush anything already queued, then exit.
                        while let Ok(doc) = rx.try_recv() {
                            if write_frame(&mut out, &doc).is_err() {
                                return;
                            }
                        }
                        return;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        }
    });

    let mut read_half = stream;
    loop {
        match read_frame_polling(&mut read_half, &inner) {
            Ok(Some(doc)) => {
                if let Some(resp) = process_request(&inner, &doc, conn_id) {
                    let _ = tx.send(encode_response(&resp));
                }
            }
            // Stop requested between frames.
            Ok(None) => break,
            Err(WireError::Malformed(detail)) => {
                // The stream may be desynchronized after a framing
                // error: answer, then drop the connection.
                let _ = tx.send(encode_response(&Response::BadRequest { detail }));
                break;
            }
            Err(_) => break,
        }
    }
    inner.router.deregister(conn_id);
    drop(tx);
    let _ = writer.join();
}

/// Reads one frame from a socket with a read timeout, returning
/// `Ok(None)` if the server stopped while waiting **between** frames.
/// Once a frame has started, timeouts keep polling so a slow sender is
/// not misread as a desync.
fn read_frame_polling(stream: &mut TcpStream, inner: &Inner) -> Result<Option<Json>, WireError> {
    let mut len_buf = [0u8; 4];
    read_exact_polling(stream, &mut len_buf, true, inner)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "announced frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_polling(stream, &mut payload, false, inner)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| WireError::Malformed("frame is not UTF-8".into()))?;
    Json::parse(text)
        .map(Some)
        .map_err(|e| WireError::Malformed(e.to_string()))
}

/// `read_exact` over a socket with a read timeout. `interruptible` is
/// true only before the first byte of a frame: that is the safe point to
/// give up when the server is stopping.
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    interruptible: bool,
    inner: &Inner,
) -> Result<(), WireError> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Err(WireError::Closed),
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if interruptible && got == 0 && inner.stopped.load(Ordering::SeqCst) {
                    return Err(WireError::Closed);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

// A sentinel for "stop requested, close quietly" would complicate the
// WireError enum; instead read_frame_polling maps it to `Closed`, which
// the reader loop treats identically (deregister + join writer).

/// Handles one decoded request; `None` means the response will arrive
/// later through the router (an admitted solve).
fn process_request(inner: &Arc<Inner>, doc: &Json, conn_id: u64) -> Option<Response> {
    let req = match decode_request(doc) {
        Ok(req) => req,
        Err(e) => {
            return Some(Response::BadRequest {
                detail: e.to_string(),
            })
        }
    };
    match req {
        Request::Ping => Some(Response::Ok(Json::Obj(vec![(
            "pong".into(),
            Json::Bool(true),
        )]))),
        Request::Stats => Some(Response::Ok(inner.stats_doc())),
        Request::Metrics => Some(Response::Ok(Json::Obj(vec![(
            "exposition".into(),
            Json::str(inner.metrics.exposition()),
        )]))),
        Request::Events { limit, min_level } => {
            let events = inner.metrics.events.tail(limit, min_level);
            Some(Response::Ok(Json::Obj(vec![
                (
                    "events".into(),
                    Json::Arr(events.iter().map(event_to_json).collect()),
                ),
                (
                    "total_emitted".into(),
                    Json::num(inner.metrics.events.total_emitted() as f64),
                ),
            ])))
        }
        Request::Shutdown => {
            signal::request_shutdown();
            Some(Response::Ok(Json::Obj(vec![(
                "draining".into(),
                Json::Bool(true),
            )])))
        }
        Request::Chaos(cmd) => {
            inner.stats.chaos_cmd();
            inner.arm_chaos(&cmd);
            let kind = match cmd {
                ChaosCmd::Off => "off",
                ChaosCmd::Panic { .. } => "panic",
                ChaosCmd::Stall { .. } => "stall",
            };
            inner.metrics.event(
                Level::Warn,
                "chaos_armed",
                None,
                vec![("kind".to_string(), FieldValue::from(kind))],
            );
            Some(Response::Ok(Json::Obj(vec![(
                "chaos".into(),
                Json::str(kind),
            )])))
        }
        Request::Solve(spec) => {
            // Each refusal path records exactly one offered+rejected
            // transition; acceptance runs `queue.push` inside the
            // accounting lock so a scrape can never see a job the
            // dispatcher resolved before it was counted as accepted.
            if signal::shutdown_requested() {
                inner.stats.offer_rejected();
                return Some(Response::Rejected(Rejected::ShuttingDown));
            }
            if let Err(rejected) = spec.validate(&inner.limits) {
                inner.stats.offer_rejected();
                inner.metrics.event(
                    Level::Warn,
                    "job_rejected",
                    None,
                    vec![("reason".to_string(), FieldValue::from(rejected.kind()))],
                );
                return Some(Response::Rejected(rejected));
            }
            // ORDERING: Relaxed — pure ID allocation; uniqueness comes
            // from RMW atomicity, no ordering needed.
            let id = inner.next_job_id.fetch_add(1, Ordering::Relaxed);
            let kernel = spec.workload.kernel_label();
            let job = QueuedJob {
                id,
                spec,
                admitted_at: std::time::Instant::now(),
                reply_to: conn_id,
            };
            match inner.stats.offer(|| inner.queue.push(job)) {
                Ok(()) => {
                    inner.metrics.event(
                        Level::Debug,
                        "job_admitted",
                        Some(id),
                        vec![
                            ("kernel".to_string(), FieldValue::from(kernel)),
                            ("conn".to_string(), FieldValue::from(conn_id)),
                        ],
                    );
                    None
                }
                Err(rejected) => {
                    inner.metrics.event(
                        Level::Warn,
                        "job_rejected",
                        Some(id),
                        vec![("reason".to_string(), FieldValue::from(rejected.kind()))],
                    );
                    Some(Response::Rejected(rejected))
                }
            }
        }
    }
}
