//! Job model and admission control.
//!
//! A *job* is one solve request from one tenant: a workload (7-point
//! stencil heat diffusion or a D3Q19 LBM scenario), a cubic grid edge, a
//! step count, the 3.5-D blocking parameters, a priority class and a
//! deadline. Admission control validates the spec **before** it can touch
//! a thread team, and every refusal is a typed [`Rejected`] — the service
//! never drops a request silently.
//!
//! Job inputs are fully determined by the spec (fixed initial conditions
//! per workload/scenario), which is what makes the service's bit-identity
//! guarantee *testable*: any client can recompute the scalar-reference
//! checksum for a spec and compare it with the one the daemon returns,
//! whichever ladder rung actually served the job.

use std::fmt;
use std::time::Duration;

use threefive_core::exec::Blocking35;
use threefive_lbm::LbmBlocking;

/// Monotonically increasing per-daemon job identifier, assigned at
/// admission and attached to every response and telemetry record.
pub type JobId = u64;

/// Which solver pipeline a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// 7-point stencil heat diffusion (fixed deterministic seed grid).
    Stencil,
    /// D3Q19 lattice Boltzmann on a named scenario.
    Lbm(LbmScenario),
}

/// The LBM scenarios the service exposes (fixed parameters per name, so
/// results are reproducible from the spec alone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LbmScenario {
    /// Closed box at rest.
    ClosedBox,
    /// Lid-driven cavity.
    Cavity,
    /// Channel flow around a sphere.
    Channel,
}

impl LbmScenario {
    /// Wire name of the scenario.
    pub fn name(self) -> &'static str {
        match self {
            LbmScenario::ClosedBox => "box",
            LbmScenario::Cavity => "cavity",
            LbmScenario::Channel => "channel",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "box" => Some(LbmScenario::ClosedBox),
            "cavity" => Some(LbmScenario::Cavity),
            "channel" => Some(LbmScenario::Channel),
            _ => None,
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Workload::Stencil => f.write_str("stencil"),
            Workload::Lbm(s) => write!(f, "lbm/{}", s.name()),
        }
    }
}

impl Workload {
    /// Allocation-free label for per-kernel metrics (scenario included,
    /// matching [`Display`](fmt::Display) output).
    pub fn kernel_label(&self) -> &'static str {
        match self {
            Workload::Stencil => "stencil",
            Workload::Lbm(LbmScenario::ClosedBox) => "lbm/box",
            Workload::Lbm(LbmScenario::Cavity) => "lbm/cavity",
            Workload::Lbm(LbmScenario::Channel) => "lbm/channel",
        }
    }
}

/// Number of priority classes; class `PRIORITIES - 1` is served first.
pub const PRIORITIES: usize = 3;

/// One tenant's solve request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Solver pipeline and (for LBM) scenario.
    pub workload: Workload,
    /// Cubic grid edge (the job grid is `n × n × n`).
    pub n: usize,
    /// Time steps to advance.
    pub steps: usize,
    /// Temporal blocking factor `dim_T`.
    pub dim_t: usize,
    /// XY tile edge (clamped to `n` at execution).
    pub tile: usize,
    /// End-to-end deadline measured from admission: queue wait plus
    /// execution. Flows into the executor watchdog as the remaining
    /// budget at dispatch.
    pub deadline: Duration,
    /// Priority class `0..PRIORITIES` (higher is served first).
    pub priority: u8,
}

/// Admission limits the daemon enforces before a job may queue.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionLimits {
    /// Maximum grid cells (`n³`) a single job may claim.
    pub max_cells: u64,
}

impl Default for AdmissionLimits {
    fn default() -> Self {
        // 128³: one tenant may not blow every team's cache and the
        // daemon's memory with a single request.
        Self {
            max_cells: 128 * 128 * 128,
        }
    }
}

/// Typed admission refusal. Every variant maps to a `status: rejected`
/// wire response naming the reason — backpressure is explicit, never a
/// silent drop or an unexplained disconnect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded admission queue is at capacity (backpressure).
    QueueFull {
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The requested grid exceeds the per-job cell limit.
    GridTooLarge {
        /// Requested cells (`n³`).
        cells: u64,
        /// Configured limit.
        max_cells: u64,
    },
    /// The blocking/stepping parameters cannot form a valid plan.
    BadPlan {
        /// Human-readable diagnosis (from the executors' own validators).
        detail: String,
    },
    /// The daemon is draining for shutdown and admits no new jobs.
    ShuttingDown,
}

impl Rejected {
    /// Stable wire tag of the rejection reason.
    pub fn kind(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "QueueFull",
            Rejected::GridTooLarge { .. } => "GridTooLarge",
            Rejected::BadPlan { .. } => "BadPlan",
            Rejected::ShuttingDown => "ShuttingDown",
        }
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} jobs)")
            }
            Rejected::GridTooLarge { cells, max_cells } => {
                write!(f, "grid of {cells} cells exceeds the limit of {max_cells}")
            }
            Rejected::BadPlan { detail } => write!(f, "invalid plan: {detail}"),
            Rejected::ShuttingDown => f.write_str("daemon is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Typed failure of an *admitted* job. Unlike [`Rejected`] these carry a
/// job id on the wire: the tenant's request was accepted and then could
/// not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobFailure {
    /// The job's deadline expired (in queue or during execution) before a
    /// result was produced.
    DeadlineExpired {
        /// The job's configured deadline, milliseconds.
        deadline_ms: u64,
    },
    /// No healthy team became available within the job's deadline (all
    /// teams leased or quarantined).
    PoolExhausted,
    /// The whole executor ladder failed (unrecoverable error from the
    /// final reference rung — numerically broken input, for instance).
    Failed {
        /// Display of the underlying ladder error.
        detail: String,
    },
}

impl JobFailure {
    /// Stable wire tag of the failure kind.
    pub fn kind(&self) -> &'static str {
        match self {
            JobFailure::DeadlineExpired { .. } => "DeadlineExpired",
            JobFailure::PoolExhausted => "PoolExhausted",
            JobFailure::Failed { .. } => "Failed",
        }
    }
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFailure::DeadlineExpired { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms expired")
            }
            JobFailure::PoolExhausted => f.write_str("no healthy team available"),
            JobFailure::Failed { detail } => write!(f, "job failed: {detail}"),
        }
    }
}

impl std::error::Error for JobFailure {}

/// Successful job completion as reported to the tenant.
#[derive(Clone, Debug, PartialEq)]
pub struct Completed {
    /// Ladder rung that served the request (display label).
    pub rung: String,
    /// Downgrades taken on the way (0 = fastest applicable rung worked).
    pub downgrades: u32,
    /// Bit-exact checksum of the result grid/lattice (see the facade's
    /// checksum definition) — equal to the scalar reference's checksum
    /// whichever rung served the job.
    pub checksum: u64,
    /// Barrier-wait share of the parallel rung, when instrumented.
    pub barrier_share: Option<f64>,
    /// Execution wall-clock milliseconds (excludes queue wait).
    pub exec_ms: f64,
}

impl JobSpec {
    /// Validates the spec against `limits`; `Err` is the typed refusal to
    /// send back. Runs the executors' own plan validators so a spec that
    /// admits cleanly can always be turned into a blocking at dispatch.
    pub fn validate(&self, limits: &AdmissionLimits) -> Result<(), Rejected> {
        if self.n == 0 {
            return Err(Rejected::BadPlan {
                detail: "grid edge n must be positive".into(),
            });
        }
        if self.steps == 0 {
            return Err(Rejected::BadPlan {
                detail: "steps must be positive".into(),
            });
        }
        if self.deadline.is_zero() {
            return Err(Rejected::BadPlan {
                detail: "deadline_ms must be positive".into(),
            });
        }
        if usize::from(self.priority) >= PRIORITIES {
            return Err(Rejected::BadPlan {
                detail: format!("priority {} out of range (0..{PRIORITIES})", self.priority),
            });
        }
        let cells = (self.n as u64).pow(3);
        if cells > limits.max_cells {
            return Err(Rejected::GridTooLarge {
                cells,
                max_cells: limits.max_cells,
            });
        }
        let tx = self.tile.min(self.n);
        match self.workload {
            Workload::Stencil => Blocking35::try_new(tx, tx, self.dim_t)
                .map(|_| ())
                .map_err(|e| Rejected::BadPlan {
                    detail: e.to_string(),
                })?,
            Workload::Lbm(_) => LbmBlocking::try_new(tx, tx, self.dim_t)
                .map(|_| ())
                .map_err(|e| Rejected::BadPlan {
                    detail: e.to_string(),
                })?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            workload: Workload::Stencil,
            n: 16,
            steps: 4,
            dim_t: 2,
            tile: 16,
            deadline: Duration::from_secs(5),
            priority: 1,
        }
    }

    #[test]
    fn valid_spec_admits() {
        assert_eq!(spec().validate(&AdmissionLimits::default()), Ok(()));
    }

    #[test]
    fn oversized_grid_is_typed_rejection() {
        let mut s = spec();
        s.n = 200;
        let err = s.validate(&AdmissionLimits::default()).unwrap_err();
        assert_eq!(
            err,
            Rejected::GridTooLarge {
                cells: 8_000_000,
                max_cells: 128 * 128 * 128
            }
        );
        assert_eq!(err.kind(), "GridTooLarge");
    }

    #[test]
    fn zero_dimt_is_bad_plan_naming_the_parameter() {
        let mut s = spec();
        s.dim_t = 0;
        let err = s.validate(&AdmissionLimits::default()).unwrap_err();
        assert_eq!(err.kind(), "BadPlan");
        assert!(err.to_string().contains("dimT=0"), "{err}");
    }

    #[test]
    fn zero_steps_zero_n_zero_deadline_and_bad_priority_rejected() {
        for mutate in [
            (|s: &mut JobSpec| s.steps = 0) as fn(&mut JobSpec),
            |s| s.n = 0,
            |s| s.deadline = Duration::ZERO,
            |s| s.priority = PRIORITIES as u8,
        ] {
            let mut s = spec();
            mutate(&mut s);
            assert_eq!(
                s.validate(&AdmissionLimits::default()).unwrap_err().kind(),
                "BadPlan"
            );
        }
    }

    #[test]
    fn lbm_spec_validates_via_lbm_blocking() {
        let mut s = spec();
        s.workload = Workload::Lbm(LbmScenario::Cavity);
        assert!(s.validate(&AdmissionLimits::default()).is_ok());
        s.tile = 0;
        assert_eq!(
            s.validate(&AdmissionLimits::default()).unwrap_err().kind(),
            "BadPlan"
        );
    }

    #[test]
    fn scenario_names_round_trip() {
        for sc in [
            LbmScenario::ClosedBox,
            LbmScenario::Cavity,
            LbmScenario::Channel,
        ] {
            assert_eq!(LbmScenario::parse(sc.name()), Some(sc));
        }
        assert_eq!(LbmScenario::parse("vortex"), None);
    }
}
