//! A hermetic, dependency-free stand-in for the parts of the `criterion`
//! crate this workspace's benches use.
//!
//! The build environment is fully offline, so the real Criterion cannot be
//! fetched. This shim keeps every bench target compiling and runnable with
//! the same source: it measures wall-clock time over a handful of
//! iterations and prints one plain-text line per benchmark. There are no
//! statistics, plots, or baselines — swap the workspace dependency back to
//! the real `criterion` for publication-quality numbers.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (shim: only a print-out context).
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Mirrors Criterion's CLI hookup; the shim ignores arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        run_one("", &id.into_benchmark_id(), 10, None, f);
    }
}

/// Throughput annotation for per-element/byte rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        Self {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.param.is_empty() {
            f.write_str(&self.name)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Conversion trait so benches can pass either a string or a
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts into a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
            param: String::new(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            param: String::new(),
        }
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (shim: capped at 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 20);
        self
    }

    /// Sets the shim-ignored measurement time (API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` with a fresh `setup()` product per sample; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> R,
    {
        for _ in 0..self.samples {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &BenchmarkId,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.iters == 0 {
        println!("bench {label:<56} (no iterations)");
        return;
    }
    let per_iter = b.total.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.1} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => format!("  {:>12.1} B/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!("bench {label:<56} {:>12.3} us/iter{rate}", per_iter * 1e6);
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_surface_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(100));
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::new("iter", 1), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", 2), &7usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats_with_param() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!("plain".into_benchmark_id().to_string(), "plain");
    }
}
