//! Address-trace generators for the 7-point-stencil executors.
//!
//! Each generator replays the memory-access pattern of the corresponding
//! executor — same loop nests, same ring addressing, same ghost shrinking
//! — against a [`CacheSim`], so the DRAM traffic of every blocking scheme
//! can be *measured* instead of asserted. Radius is fixed at 1 (the
//! paper's kernels) and one address space is laid out as:
//!
//! ```text
//! [ src grid | dst grid | ring buffers ... ]
//! ```

use threefive_grid::Dim3;

use crate::{AccessKind, CacheSim, CacheStats};

/// Convenience bundle: final counters plus the ideal (one-load-one-store)
/// traffic for comparison.
#[derive(Clone, Copy, Debug)]
pub struct TraceResult {
    /// Simulated cache counters (after flushing dirty lines).
    pub stats: CacheStats,
    /// Points committed (interior × steps).
    pub committed: u64,
    /// Cache line size used.
    pub line_bytes: usize,
}

impl TraceResult {
    /// Measured DRAM bytes per committed point.
    pub fn dram_bytes_per_point(&self) -> f64 {
        self.stats.dram_bytes(self.line_bytes) as f64 / self.committed as f64
    }
}

struct Layout {
    dim: Dim3,
    elem: u64,
    src_base: u64,
    dst_base: u64,
    ring_base: u64,
}

impl Layout {
    fn new(dim: Dim3, elem: usize) -> Self {
        let grid_bytes = dim.len() as u64 * elem as u64;
        Self {
            dim,
            elem: elem as u64,
            src_base: 0,
            dst_base: grid_bytes.next_multiple_of(4096),
            ring_base: (2 * grid_bytes).next_multiple_of(4096) + 4096,
        }
    }

    #[inline]
    fn src(&self, x: usize, y: usize, z: usize) -> u64 {
        self.src_base + self.dim.idx(x, y, z) as u64 * self.elem
    }

    #[inline]
    fn dst(&self, x: usize, y: usize, z: usize) -> u64 {
        self.dst_base + self.dim.idx(x, y, z) as u64 * self.elem
    }

    fn swap(&mut self) {
        std::mem::swap(&mut self.src_base, &mut self.dst_base);
    }
}

/// Emits the 7 reads + 1 write of one stencil application.
#[inline]
fn stencil_access(l: &Layout, c: &mut CacheSim, x: usize, y: usize, z: usize, wr: AccessKind) {
    c.access(l.src(x, y, z), AccessKind::Read);
    c.access(l.src(x - 1, y, z), AccessKind::Read);
    c.access(l.src(x + 1, y, z), AccessKind::Read);
    c.access(l.src(x, y - 1, z), AccessKind::Read);
    c.access(l.src(x, y + 1, z), AccessKind::Read);
    c.access(l.src(x, y, z - 1), AccessKind::Read);
    c.access(l.src(x, y, z + 1), AccessKind::Read);
    c.access(l.dst(x, y, z), wr);
}

/// No-blocking sweep trace: plain `z, y, x` interior loop each step.
///
/// `streaming_stores` selects non-temporal writes (paper §IV-A1).
pub fn naive_sweep_trace(
    dim: Dim3,
    elem: usize,
    steps: usize,
    streaming_stores: bool,
    cache: &mut CacheSim,
) -> TraceResult {
    let mut l = Layout::new(dim, elem);
    let wr = if streaming_stores {
        AccessKind::StreamingWrite
    } else {
        AccessKind::Write
    };
    let interior = dim.interior_region(1);
    for _ in 0..steps {
        for z in interior.zs() {
            for y in interior.ys() {
                for x in interior.xs() {
                    stencil_access(&l, cache, x, y, z, wr);
                }
            }
        }
        l.swap();
    }
    cache.flush();
    TraceResult {
        stats: cache.stats(),
        committed: interior.len() as u64 * steps as u64,
        line_bytes: cache.line_bytes(),
    }
}

/// 3.5-D pipeline trace (serial; radius 1): XY tiles of `tile × tile`
/// with `dim_t` time levels. Level 1 reads the source grid, intermediate
/// levels read/write per-level rings of `3R+1 = 4` sub-planes (allocated
/// after the grids), the last level writes the destination.
pub fn blocked35d_trace(
    dim: Dim3,
    elem: usize,
    steps: usize,
    tile: usize,
    dim_t: usize,
    streaming_stores: bool,
    cache: &mut CacheSim,
) -> TraceResult {
    assert!(tile > 0 && dim_t > 0);
    let mut l = Layout::new(dim, elem);
    let wr = if streaming_stores {
        AccessKind::StreamingWrite
    } else {
        AccessKind::Write
    };
    let interior = dim.interior_region(1);
    let r = 1usize;
    let slots = 4usize;

    let mut remaining = steps;
    while remaining > 0 {
        let chunk = remaining.min(dim_t);
        let mut oy = 0usize;
        while oy < dim.ny {
            let oy1 = (oy + tile).min(dim.ny);
            let mut ox = 0usize;
            while ox < dim.nx {
                let ox1 = (ox + tile).min(dim.nx);
                trace_tile(&l, cache, chunk, r, slots, ox, ox1, oy, oy1, wr);
                ox = ox1;
            }
            oy = oy1;
        }
        l.swap();
        remaining -= chunk;
    }
    cache.flush();
    TraceResult {
        stats: cache.stats(),
        committed: interior.len() as u64 * steps as u64,
        line_bytes: cache.line_bytes(),
    }
}

/// Temporal-only blocking trace: tile = whole plane.
pub fn temporal_trace(
    dim: Dim3,
    elem: usize,
    steps: usize,
    dim_t: usize,
    streaming_stores: bool,
    cache: &mut CacheSim,
) -> TraceResult {
    blocked35d_trace(
        dim,
        elem,
        steps,
        dim.nx.max(dim.ny),
        dim_t,
        streaming_stores,
        cache,
    )
}

#[allow(clippy::too_many_arguments)]
fn trace_tile(
    l: &Layout,
    cache: &mut CacheSim,
    c: usize,
    r: usize,
    slots: usize,
    ox0: usize,
    ox1: usize,
    oy0: usize,
    oy1: usize,
    wr: AccessKind,
) {
    let dim = l.dim;
    let h = r * c;
    let gx0 = ox0.saturating_sub(h);
    let gx1 = (ox1 + h).min(dim.nx);
    let gy0 = oy0.saturating_sub(h);
    let gy1 = (oy1 + h).min(dim.ny);
    let (lx, ly) = (gx1 - gx0, gy1 - gy0);
    let plane = (lx * ly) as u64;

    // Ring t (1-based level, stored for levels 1..c) lives at:
    let ring_addr = |level: usize, z: usize, xl: usize, yl: usize| -> u64 {
        l.ring_base
            + ((level - 1) as u64 * slots as u64 * plane
                + (z % slots) as u64 * plane
                + (yl * lx + xl) as u64)
                * l.elem
    };

    let compute_x = |t: usize| -> (usize, usize) {
        let lo = if gx0 == 0 { r } else { gx0 + r * t };
        let hi = if gx1 == dim.nx {
            dim.nx - r
        } else {
            gx1.saturating_sub(r * t)
        };
        (lo, hi.max(lo))
    };
    let compute_y = |t: usize| -> (usize, usize) {
        let lo = if gy0 == 0 { r } else { gy0 + r * t };
        let hi = if gy1 == dim.ny {
            dim.ny - r
        } else {
            gy1.saturating_sub(r * t)
        };
        (lo, hi.max(lo))
    };
    let (cx0, cx1) = compute_x(c);
    let (cy0, cy1) = compute_y(c);
    if cx0 >= cx1 || cy0 >= cy1 {
        return;
    }

    for s in 0..dim.nz + 2 * r * (c - 1) {
        for t in 1..=c {
            let lag = 2 * r * (t - 1);
            if s < lag {
                continue;
            }
            let z = s - lag;
            if z >= dim.nz {
                continue;
            }
            let z_boundary = z < r || z >= dim.nz - r;
            if z_boundary {
                if t < c {
                    // Copy the Dirichlet plane into the ring.
                    for yl in 0..ly {
                        for xl in 0..lx {
                            cache.access(l.src(gx0 + xl, gy0 + yl, z), AccessKind::Read);
                            cache.access(ring_addr(t, z, xl, yl), AccessKind::Write);
                        }
                    }
                }
                continue;
            }
            let (x0, x1) = compute_x(t);
            let (y0, y1) = compute_y(t);
            for y in y0..y1 {
                for x in x0..x1 {
                    if t == 1 {
                        // Level 1 reads the source grid.
                        for (dx, dy, dz) in NEIGHBORS {
                            cache.access(
                                l.src(
                                    (x as i64 + dx) as usize,
                                    (y as i64 + dy) as usize,
                                    (z as i64 + dz) as usize,
                                ),
                                AccessKind::Read,
                            );
                        }
                    } else {
                        // Deeper levels read the previous level's ring.
                        for (dx, dy, dz) in NEIGHBORS {
                            cache.access(
                                ring_addr(
                                    t - 1,
                                    (z as i64 + dz) as usize,
                                    (x as i64 + dx) as usize - gx0,
                                    (y as i64 + dy) as usize - gy0,
                                ),
                                AccessKind::Read,
                            );
                        }
                    }
                    if t == c {
                        cache.access(l.dst(x, y, z), wr);
                    } else {
                        cache.access(ring_addr(t, z, x - gx0, y - gy0), AccessKind::Write);
                    }
                }
            }
            // Dirichlet rims into the ring (Y faces; X rim cells).
            if t < c {
                for yl in 0..ly {
                    let y = gy0 + yl;
                    if y < r || y >= dim.ny - r {
                        for xl in 0..lx {
                            cache.access(l.src(gx0 + xl, y, z), AccessKind::Read);
                            cache.access(ring_addr(t, z, xl, yl), AccessKind::Write);
                        }
                    }
                }
            }
        }
    }
}

const NEIGHBORS: [(i64, i64, i64); 7] = [
    (0, 0, 0),
    (-1, 0, 0),
    (1, 0, 0),
    (0, -1, 0),
    (0, 1, 0),
    (0, 0, -1),
    (0, 0, 1),
];

#[cfg(test)]
mod tests {
    use super::*;
    use threefive_core::planner::kappa_35d;

    const E: usize = 4; // f32

    /// One grid slab in bytes.
    fn slab_bytes(n: usize) -> usize {
        n * n * E
    }

    #[test]
    fn naive_with_fitting_slabs_loads_each_point_once_per_step() {
        // Cache holds several slabs: the z-direction reuse works and each
        // point is fetched ~once per step (plus write-allocate).
        let n = 32usize;
        let dim = Dim3::cube(n);
        let mut cache = CacheSim::llc(8 * slab_bytes(n));
        let res = naive_sweep_trace(dim, E, 2, true, &mut cache);
        let ideal_reads = (dim.len() * 2 * E) as f64; // one fill per point/step
        let measured = res.stats.dram_read_bytes(64) as f64;
        assert!(
            measured < 1.4 * ideal_reads,
            "reads {measured} vs ideal {ideal_reads}"
        );
    }

    #[test]
    fn naive_with_tiny_cache_refetches_neighboring_slabs() {
        // Cache far smaller than one slab: the three-plane reuse dies and
        // each point streams in ~3x per step (for z-1, z, z+1).
        let n = 64usize;
        let dim = Dim3::cube(n);
        let mut cache = CacheSim::llc(slab_bytes(n) / 4);
        let res = naive_sweep_trace(dim, E, 1, true, &mut cache);
        let per_point_reads = res.stats.dram_read_bytes(64) as f64 / dim.len() as f64;
        assert!(
            per_point_reads > 2.0 * E as f64,
            "expected z-reuse to fail: {per_point_reads} B/pt"
        );
    }

    #[test]
    fn blocked35d_reduces_dram_traffic_by_dim_t_over_kappa() {
        // The headline claim (Eq. 1 + §V-E), measured: with rings resident,
        // dim_T steps cost one read+write of the (ghost-expanded) grid.
        let n = 48usize;
        let tile = 24usize;
        let dim_t = 2usize;
        let dim = Dim3::cube(n);
        // Cache sized to hold the rings comfortably but NOT the grid:
        // ring footprint = (dim_t-1) rings x 4 planes x (tile+4)^2 x 4B.
        let ring_bytes = (dim_t - 1) * 4 * (tile + 2 * dim_t) * (tile + 2 * dim_t) * E;
        let mut cache = CacheSim::llc((8 * ring_bytes).next_power_of_two());
        let res35 = blocked35d_trace(dim, E, dim_t, tile, dim_t, true, &mut cache);

        let mut cache_n = CacheSim::llc((8 * ring_bytes).next_power_of_two());
        let res_naive = naive_sweep_trace(dim, E, dim_t, true, &mut cache_n);

        let ratio = res_naive.stats.dram_bytes(64) as f64 / res35.stats.dram_bytes(64) as f64;
        let kappa = kappa_35d(1, dim_t, tile + 2 * dim_t, tile + 2 * dim_t);
        let predicted = dim_t as f64 / kappa;
        assert!(
            ratio > 0.7 * predicted && ratio < 1.5 * predicted,
            "measured traffic ratio {ratio:.2}, predicted dim_T/kappa = {predicted:.2}"
        );
        assert!(ratio > 1.2, "3.5-D must actually reduce traffic: {ratio}");
    }

    #[test]
    fn equation_one_violation_degrades_the_gain() {
        // Same pipeline twice: once with the rings resident (Eq. 1 holds)
        // and once with a cache an order of magnitude smaller than the
        // rings. The measured traffic gain over the identically-cached
        // naive sweep must drop substantially in the violated case.
        let n = 48usize;
        let tile = 48usize; // whole-plane tiles → big rings
        let dim_t = 3usize;
        let dim = Dim3::cube(n);
        let ring_bytes = (dim_t - 1) * 4 * n * n * E;

        let gain_with = |cache_bytes: usize| -> f64 {
            let mut cb = CacheSim::llc(cache_bytes);
            let blocked = blocked35d_trace(dim, E, dim_t, tile, dim_t, true, &mut cb);
            let mut cn = CacheSim::llc(cache_bytes);
            let naive = naive_sweep_trace(dim, E, dim_t, true, &mut cn);
            naive.stats.dram_bytes(64) as f64 / blocked.stats.dram_bytes(64) as f64
        };
        let resident = gain_with((4 * ring_bytes).next_power_of_two());
        let violated = gain_with((ring_bytes / 16).next_power_of_two());
        assert!(
            resident > 2.0,
            "resident rings must gain ~dim_T: {resident}"
        );
        assert!(
            violated < 0.75 * resident,
            "violating Eq. 1 must cost most of the gain: {violated} vs {resident}"
        );
    }

    #[test]
    fn temporal_only_works_exactly_when_plane_rings_fit() {
        // The Figure 4(a) crossover, measured in the cache simulator.
        let dim_t = 3usize;
        let fit_n = 24usize; // rings: 2 levels x 4 planes x 24² x 4 B ≈ 18 KB
        let nofit_n = 96usize; // rings ≈ 295 KB
        let cache_bytes = 64 << 10;

        let mut c1 = CacheSim::llc(cache_bytes);
        let fit = temporal_trace(Dim3::cube(fit_n), E, dim_t, dim_t, true, &mut c1);
        let mut c2 = CacheSim::llc(cache_bytes);
        let fit_naive = naive_sweep_trace(Dim3::cube(fit_n), E, dim_t, true, &mut c2);
        let gain_small = fit_naive.stats.dram_bytes(64) as f64 / fit.stats.dram_bytes(64) as f64;

        let mut c3 = CacheSim::llc(cache_bytes);
        let nofit = temporal_trace(Dim3::cube(nofit_n), E, dim_t, dim_t, true, &mut c3);
        let mut c4 = CacheSim::llc(cache_bytes);
        let nofit_naive = naive_sweep_trace(Dim3::cube(nofit_n), E, dim_t, true, &mut c4);
        let gain_large =
            nofit_naive.stats.dram_bytes(64) as f64 / nofit.stats.dram_bytes(64) as f64;

        assert!(
            gain_small > 1.4,
            "temporal-only must help when rings fit: {gain_small}"
        );
        assert!(
            gain_large < gain_small * 0.75,
            "and fade when they don't: small {gain_small} vs large {gain_large}"
        );
    }

    #[test]
    fn write_allocate_vs_streaming_store_traffic() {
        // §IV-A1: streaming stores eliminate the write-allocate fetch.
        let dim = Dim3::cube(32);
        let mut a = CacheSim::llc(1 << 20);
        let with_ws = naive_sweep_trace(dim, E, 1, false, &mut a);
        let mut b = CacheSim::llc(1 << 20);
        let with_ss = naive_sweep_trace(dim, E, 1, true, &mut b);
        assert!(
            with_ws.stats.dram_read_bytes(64) > with_ss.stats.dram_read_bytes(64),
            "write-allocate must add read traffic"
        );
    }
}
