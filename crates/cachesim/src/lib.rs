//! # threefive-cachesim — empirical validation of the cache-capacity math
//!
//! The planner's equations rest on two claims the paper states but cannot
//! measure directly:
//!
//! 1. **Eq. 1 (residency):** as long as
//!    `ℰ·(2R+2)·dim_T·dimX·dimY ≤ 𝒞`, the 3.5-D working set stays
//!    cache-resident, so DRAM sees each grid point once per `dim_T` steps
//!    (scaled by the ghost factor κ);
//! 2. **streaming:** the no-blocking sweep re-reads the whole grid from
//!    DRAM every time step once three XY slabs stop fitting.
//!
//! This crate checks both with machinery instead of algebra: a
//! set-associative write-back LRU [`CacheSim`] and [`trace`] generators
//! that replay the executors' exact access patterns (same loop structure,
//! same ring addressing) through it, counting real line fills and
//! write-backs.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod cache;
pub mod trace;

pub use cache::{AccessKind, CacheSim, CacheStats};
