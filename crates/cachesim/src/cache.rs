//! Set-associative, write-allocate, write-back LRU cache model.

/// Whether an access reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (write-allocate: a missing line is fetched first).
    Write,
    /// Streaming (non-temporal) store: bypasses the cache entirely,
    /// writing the line to DRAM without a fill — the paper's §IV-A1
    /// "streaming stores" optimization.
    StreamingWrite,
}

/// Aggregate counters of a simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Line fills from DRAM (read misses + write-allocate fills).
    pub fills: u64,
    /// Dirty lines written back to DRAM on eviction or flush.
    pub write_backs: u64,
    /// Lines written straight to DRAM by streaming stores.
    pub streamed_lines: u64,
}

impl CacheStats {
    /// Bytes read from DRAM.
    pub fn dram_read_bytes(&self, line: usize) -> u64 {
        self.fills * line as u64
    }

    /// Bytes written to DRAM.
    pub fn dram_write_bytes(&self, line: usize) -> u64 {
        (self.write_backs + self.streamed_lines) * line as u64
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self, line: usize) -> u64 {
        self.dram_read_bytes(line) + self.dram_write_bytes(line)
    }

    /// Hit fraction, in `[0, 1]`; 0 when no accesses were recorded
    /// (never NaN, same contract as `SweepTiming::barrier_share`).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of the most recent touch (true LRU).
    last_use: u64,
}

/// A single-level set-associative LRU cache.
pub struct CacheSim {
    line_bytes: usize,
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
    /// Write-combining buffer: the line currently absorbing streaming
    /// stores. Consecutive streaming writes to one line merge into a
    /// single DRAM transaction, as on real hardware.
    wc_line: Option<u64>,
}

impl CacheSim {
    /// Builds a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways`-way associativity.
    ///
    /// # Panics
    /// Panics unless `capacity_bytes` divides evenly into `ways` ways of
    /// power-of-two-sized sets.
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1);
        let total_lines = capacity_bytes / line_bytes;
        assert!(
            total_lines >= ways && total_lines.is_multiple_of(ways),
            "capacity must hold a whole number of sets"
        );
        let sets = total_lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            line_bytes,
            sets,
            ways,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    last_use: 0,
                };
                total_lines
            ],
            clock: 0,
            stats: CacheStats::default(),
            wc_line: None,
        }
    }

    /// An LLC-like default: 64-byte lines, 16-way.
    pub fn llc(capacity_bytes: usize) -> Self {
        Self::new(capacity_bytes, 64, 16)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Simulates one access at byte address `addr`.
    pub fn access(&mut self, addr: u64, kind: AccessKind) {
        self.clock += 1;
        self.stats.accesses += 1;
        if kind == AccessKind::StreamingWrite {
            // Non-temporal store: goes straight to DRAM through a
            // write-combining buffer, so consecutive stores to one line
            // cost one line transaction.
            let line = addr / self.line_bytes as u64;
            if self.wc_line != Some(line) {
                self.stats.streamed_lines += 1;
                self.wc_line = Some(line);
            }
            return;
        }
        let line_addr = addr / self.line_bytes as u64;
        let set = (line_addr % self.sets as u64) as usize;
        let tag = line_addr / self.sets as u64;
        let base = set * self.ways;
        let set_lines = &mut self.lines[base..base + self.ways];

        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            self.stats.hits += 1;
            line.last_use = self.clock;
            if kind == AccessKind::Write {
                line.dirty = true;
            }
            return;
        }

        // Miss: fill (write-allocate), evicting the LRU way.
        self.stats.fills += 1;
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("ways >= 1");
        if victim.valid && victim.dirty {
            self.stats.write_backs += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            last_use: self.clock,
        };
    }

    /// Flushes all dirty lines (end-of-run accounting).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            if l.valid && l.dirty {
                self.stats.write_backs += 1;
                l.dirty = false;
            }
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_after_first_fill() {
        let mut c = CacheSim::new(1024, 64, 2);
        c.access(0, AccessKind::Read);
        c.access(8, AccessKind::Read); // same line
        c.access(0, AccessKind::Read);
        let s = c.stats();
        assert_eq!(s.fills, 1);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = CacheSim::new(1024, 64, 2); // 16 lines
                                                // Touch 32 distinct lines twice: second pass must miss everywhere
                                                // (LRU with a 2x working set).
        for pass in 0..2 {
            for i in 0..32u64 {
                c.access(i * 64, AccessKind::Read);
            }
            if pass == 0 {
                assert_eq!(c.stats().fills, 32);
            }
        }
        assert_eq!(c.stats().fills, 64);
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn working_set_within_capacity_is_fully_reused() {
        let mut c = CacheSim::new(1024, 64, 2);
        for _ in 0..4 {
            for i in 0..16u64 {
                c.access(i * 64, AccessKind::Read);
            }
        }
        let s = c.stats();
        assert_eq!(s.fills, 16);
        assert_eq!(s.hits, 3 * 16);
    }

    #[test]
    fn dirty_eviction_counts_a_write_back() {
        let mut c = CacheSim::new(128, 64, 1); // 2 sets, direct mapped
        c.access(0, AccessKind::Write); // set 0, dirty
        c.access(128, AccessKind::Read); // set 0 again → evicts dirty line
        let s = c.stats();
        assert_eq!(s.write_backs, 1);
        assert_eq!(s.fills, 2);
    }

    #[test]
    fn flush_writes_back_remaining_dirty_lines() {
        let mut c = CacheSim::new(1024, 64, 2);
        for i in 0..8u64 {
            c.access(i * 64, AccessKind::Write);
        }
        c.flush();
        assert_eq!(c.stats().write_backs, 8);
        // Flushing twice adds nothing.
        c.flush();
        assert_eq!(c.stats().write_backs, 8);
    }

    #[test]
    fn streaming_stores_bypass_the_cache() {
        let mut c = CacheSim::new(1024, 64, 2);
        for i in 0..100u64 {
            c.access(i * 64, AccessKind::StreamingWrite);
        }
        let s = c.stats();
        assert_eq!(s.fills, 0);
        assert_eq!(s.streamed_lines, 100);
        assert_eq!(s.dram_write_bytes(64), 6400);
        assert_eq!(s.dram_read_bytes(64), 0);
    }

    #[test]
    fn associativity_conflicts_evict_within_one_set() {
        // Direct-mapped: two addresses mapping to the same set conflict
        // even though capacity would hold both.
        let mut c = CacheSim::new(256, 64, 1); // 4 sets
        let a = 0u64;
        let b = 4 * 64; // same set as a
        for _ in 0..4 {
            c.access(a, AccessKind::Read);
            c.access(b, AccessKind::Read);
        }
        assert_eq!(c.stats().hits, 0, "direct-mapped ping-pong never hits");
        // 2-way associativity resolves the conflict.
        let mut c2 = CacheSim::new(256, 64, 2);
        for _ in 0..4 {
            c2.access(a, AccessKind::Read);
            c2.access(b, AccessKind::Read);
        }
        assert_eq!(c2.stats().fills, 2);
        assert_eq!(c2.stats().hits, 6);
    }

    #[test]
    fn lru_is_exact_within_a_set() {
        let mut c = CacheSim::new(256, 64, 4); // 1 set of 4 ways... 4 lines
                                               // Touch lines 0,1,2,3, re-touch 0, then add 4: victim must be 1.
        for i in [0u64, 1, 2, 3, 0, 4] {
            c.access(i * 64, AccessKind::Read); // 1 set → same set
        }
        c.access(0, AccessKind::Read);
        assert_eq!(c.stats().fills, 5); // 0..4 fills, final 0 hits
        c.access(64, AccessKind::Read); // line 1 was evicted → fill again
        assert_eq!(c.stats().fills, 6);
    }

    #[test]
    fn hit_rate_is_zero_without_accesses() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheSim::llc(1 << 20).stats().hit_rate(), 0.0);
        let mut c = CacheSim::llc(1 << 20);
        c.access(0, AccessKind::Read);
        c.access(8, AccessKind::Read);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
