//! Property-based tests for the grid substrate.

use proptest::prelude::*;
use threefive_grid::partition::{even_range, even_ranges, plane_share, row_segments};
use threefive_grid::{Dim3, Grid3, PlaneRing, Region3};

proptest! {
    /// idx/coords form a bijection over the whole grid.
    #[test]
    fn idx_coords_bijection(nx in 1usize..20, ny in 1usize..20, nz in 1usize..20) {
        let d = Dim3::new(nx, ny, nz);
        for i in 0..d.len() {
            let (x, y, z) = d.coords(i);
            prop_assert!(x < nx && y < ny && z < nz);
            prop_assert_eq!(d.idx(x, y, z), i);
        }
    }

    /// even_ranges always partitions 0..n exactly, with sizes within 1.
    #[test]
    fn even_ranges_partition(n in 0usize..10_000, parts in 1usize..64) {
        let rs = even_ranges(n, parts);
        let mut next = 0usize;
        let mut min = usize::MAX;
        let mut max = 0usize;
        for r in &rs {
            prop_assert_eq!(r.start, next);
            next = r.end;
            min = min.min(r.len());
            max = max.max(r.len());
        }
        prop_assert_eq!(next, n);
        prop_assert!(max - min <= 1);
    }

    /// even_range agrees with materialised even_ranges for every k.
    #[test]
    fn even_range_consistent(n in 0usize..5_000, parts in 1usize..32) {
        let rs = even_ranges(n, parts);
        for (k, r) in rs.iter().enumerate() {
            prop_assert_eq!(&even_range(n, parts, k), r);
        }
    }

    /// plane_share covers every cell of the plane exactly once across
    /// threads, even when rows < threads (the paper's partial-row case).
    #[test]
    fn plane_share_exact_cover(nx in 1usize..40, ny in 1usize..40, parts in 1usize..17) {
        let mut seen = vec![0u32; nx * ny];
        for k in 0..parts {
            for seg in plane_share(nx, ny, parts, k) {
                prop_assert!(seg.y < ny);
                prop_assert!(seg.xs.end <= nx);
                for x in seg.xs.clone() {
                    seen[seg.y * nx + x] += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// row_segments reconstructs exactly the cells of its input range.
    #[test]
    fn row_segments_reconstruct(nx in 1usize..30, start in 0usize..600, len in 0usize..600) {
        let total = nx * 25;
        let start = start.min(total);
        let end = (start + len).min(total);
        let segs = row_segments(start..end, nx);
        let cells: Vec<usize> = segs
            .iter()
            .flat_map(|s| s.xs.clone().map(move |x| s.y * nx + x))
            .collect();
        let expect: Vec<usize> = (start..end).collect();
        prop_assert_eq!(cells, expect);
    }

    /// Region intersection is contained in both operands and its length
    /// matches pointwise membership counting.
    #[test]
    fn region_intersection_sound(
        a in (0usize..8, 0usize..8, 0usize..8, 0usize..8, 0usize..8, 0usize..8),
        b in (0usize..8, 0usize..8, 0usize..8, 0usize..8, 0usize..8, 0usize..8),
    ) {
        let ra = Region3::new(a.0, a.1, a.2, a.3, a.4, a.5);
        let rb = Region3::new(b.0, b.1, b.2, b.3, b.4, b.5);
        let ri = ra.intersect(&rb);
        let mut count = 0usize;
        for z in 0..8 {
            for y in 0..8 {
                for x in 0..8 {
                    let inside = ra.contains(x, y, z) && rb.contains(x, y, z);
                    prop_assert_eq!(inside, ri.contains(x, y, z));
                    count += usize::from(inside);
                }
            }
        }
        prop_assert_eq!(count, ri.len());
    }

    /// PlaneRing modular addressing: planes alias iff indices are congruent
    /// modulo the slot count.
    #[test]
    fn ring_aliasing(slots in 1usize..8, plane_len in 1usize..32, writes in 1usize..30) {
        let mut ring = PlaneRing::<f64>::new(slots, plane_len);
        // Write planes 0..writes in order; slot holds the last write mapped
        // to it.
        for z in 0..writes {
            let v = z as f64;
            ring.plane_mut(z).fill(v);
        }
        for z in 0..writes {
            let last_for_slot = (0..writes).rev().find(|w| w % slots == z % slots).unwrap();
            prop_assert!(ring.plane(z).iter().all(|&v| v == last_for_slot as f64));
        }
    }

    /// Grid3 fill_region then read-back matches region membership.
    #[test]
    fn fill_region_membership(
        n in 2usize..8,
        r in (0usize..8, 0usize..8, 0usize..8, 0usize..8, 0usize..8, 0usize..8),
    ) {
        let d = Dim3::cube(n);
        let reg = Region3::new(
            r.0.min(n), r.1.min(n), r.2.min(n), r.3.min(n), r.4.min(n), r.5.min(n),
        );
        let mut g = Grid3::<f32>::zeros(d);
        g.fill_region(&reg, 3.0);
        for (x, y, z) in d.full_region().points() {
            let expect = if reg.contains(x, y, z) { 3.0 } else { 0.0 };
            prop_assert_eq!(g.get(x, y, z), expect);
        }
    }
}
