//! Grid extents.

use std::fmt;

/// Extents of a 3-D grid. X is the fastest-varying (unit-stride) axis,
/// then Y, then Z — the layout the paper assumes throughout.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Extent along the unit-stride X axis (𝒩ₓ).
    pub nx: usize,
    /// Extent along Y (𝒩ᵧ).
    pub ny: usize,
    /// Extent along the streamed Z axis (𝒩_z).
    pub nz: usize,
}

impl Dim3 {
    /// Creates extents `nx × ny × nz`.
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self { nx, ny, nz }
    }

    /// Cubic extents `n × n × n` (the paper's 64³/256³/512³ datasets).
    pub const fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Total number of grid points.
    #[inline]
    pub const fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Whether the grid has no points.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Points in one XY plane (the streaming granule of 2.5-D blocking).
    #[inline]
    pub const fn plane_len(&self) -> usize {
        self.nx * self.ny
    }

    /// Linear index of `(x, y, z)`; X fastest.
    #[inline(always)]
    pub const fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.ny + y) * self.nx + x
    }

    /// Inverse of [`Dim3::idx`].
    #[inline]
    pub const fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        (x, y, z)
    }

    /// Whether `(x, y, z)` lies strictly inside the grid, at distance at
    /// least `r` from every face — i.e. a point whose radius-`r` stencil
    /// is fully supported.
    #[inline]
    pub const fn is_interior(&self, x: usize, y: usize, z: usize, r: usize) -> bool {
        x >= r && x + r < self.nx && y >= r && y + r < self.ny && z >= r && z + r < self.nz
    }

    /// The full region `[0,nx)×[0,ny)×[0,nz)`.
    pub const fn full_region(&self) -> crate::Region3 {
        crate::Region3::new(0, self.nx, 0, self.ny, 0, self.nz)
    }

    /// The interior region at stencil radius `r` (empty if the grid is too
    /// small to have any interior).
    pub fn interior_region(&self, r: usize) -> crate::Region3 {
        crate::Region3::new(
            r.min(self.nx),
            self.nx.saturating_sub(r).max(r.min(self.nx)),
            r.min(self.ny),
            self.ny.saturating_sub(r).max(r.min(self.ny)),
            r.min(self.nz),
            self.nz.saturating_sub(r).max(r.min(self.nz)),
        )
    }
}

impl fmt::Debug for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_is_x_fastest() {
        let d = Dim3::new(4, 3, 2);
        assert_eq!(d.idx(0, 0, 0), 0);
        assert_eq!(d.idx(1, 0, 0), 1);
        assert_eq!(d.idx(0, 1, 0), 4);
        assert_eq!(d.idx(0, 0, 1), 12);
        assert_eq!(d.idx(3, 2, 1), 23);
        assert_eq!(d.len(), 24);
    }

    #[test]
    fn coords_inverts_idx() {
        let d = Dim3::new(5, 7, 3);
        for i in 0..d.len() {
            let (x, y, z) = d.coords(i);
            assert_eq!(d.idx(x, y, z), i);
        }
    }

    #[test]
    fn interior_excludes_faces() {
        let d = Dim3::cube(4);
        assert!(!d.is_interior(0, 2, 2, 1));
        assert!(!d.is_interior(3, 2, 2, 1));
        assert!(d.is_interior(1, 1, 1, 1));
        assert!(d.is_interior(2, 2, 2, 1));
        assert!(!d.is_interior(2, 2, 2, 2));
    }

    #[test]
    fn interior_region_matches_pointwise_predicate() {
        let d = Dim3::new(6, 5, 7);
        for r in 0..4 {
            let reg = d.interior_region(r);
            let mut count = 0usize;
            for z in 0..d.nz {
                for y in 0..d.ny {
                    for x in 0..d.nx {
                        if d.is_interior(x, y, z, r) {
                            count += 1;
                            assert!(reg.contains(x, y, z), "r={r} ({x},{y},{z})");
                        }
                    }
                }
            }
            assert_eq!(count, reg.len(), "r={r}");
        }
    }

    #[test]
    fn interior_region_is_empty_when_radius_swallows_grid() {
        let d = Dim3::cube(4);
        assert_eq!(d.interior_region(2).len(), 0);
        assert_eq!(d.interior_region(9).len(), 0);
    }

    #[test]
    fn cube_and_plane_len() {
        let d = Dim3::cube(64);
        assert_eq!(d.len(), 64 * 64 * 64);
        assert_eq!(d.plane_len(), 64 * 64);
    }
}
