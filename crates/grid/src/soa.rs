//! Structure-of-arrays lattice storage.
//!
//! LBM works on 19 distribution values per site. For SIMD processing the
//! paper stores "each of the 19 values per cell ... in different arrays
//! (Structure-of-Arrays configuration)" (§IV-B): component `q` of
//! consecutive sites is then contiguous, so a vector lane processes one
//! site and loads are unit-stride.

use crate::{AlignedVec, Dim3, Real};

/// A 3-D lattice of `q_count` values per site, stored as `q_count`
/// independent X-fastest scalar grids.
#[derive(Clone, Debug)]
pub struct SoaGrid<T: Real> {
    dim: Dim3,
    comps: Vec<AlignedVec<T>>,
}

impl<T: Real> SoaGrid<T> {
    /// Creates a zeroed lattice with `q_count` components.
    ///
    /// # Panics
    /// Panics if `q_count == 0`.
    pub fn zeros(dim: Dim3, q_count: usize) -> Self {
        assert!(q_count > 0, "SoaGrid: need at least one component");
        Self {
            dim,
            comps: (0..q_count)
                .map(|_| AlignedVec::zeroed(dim.len()))
                .collect(),
        }
    }

    /// Lattice extents.
    #[inline]
    pub fn dim(&self) -> Dim3 {
        self.dim
    }

    /// Number of components per site (Q; 19 for D3Q19).
    #[inline]
    pub fn q_count(&self) -> usize {
        self.comps.len()
    }

    /// Component `q` as a full layout-order slice.
    #[inline]
    pub fn comp(&self, q: usize) -> &[T] {
        &self.comps[q]
    }

    /// Mutable component `q`.
    #[inline]
    pub fn comp_mut(&mut self, q: usize) -> &mut [T] {
        &mut self.comps[q]
    }

    /// Value of component `q` at `(x, y, z)`.
    #[inline(always)]
    pub fn get(&self, q: usize, x: usize, y: usize, z: usize) -> T {
        self.comps[q][self.dim.idx(x, y, z)]
    }

    /// Sets component `q` at `(x, y, z)`.
    #[inline(always)]
    pub fn set(&mut self, q: usize, x: usize, y: usize, z: usize, v: T) {
        let i = self.dim.idx(x, y, z);
        self.comps[q][i] = v;
    }

    /// All `Q` values of one site, in component order.
    pub fn site(&self, x: usize, y: usize, z: usize) -> Vec<T> {
        let i = self.dim.idx(x, y, z);
        self.comps.iter().map(|c| c[i]).collect()
    }

    /// Sets all `Q` values of one site.
    ///
    /// # Panics
    /// Panics if `values.len() != q_count`.
    pub fn set_site(&mut self, x: usize, y: usize, z: usize, values: &[T]) {
        assert_eq!(values.len(), self.q_count(), "SoaGrid::set_site arity");
        let i = self.dim.idx(x, y, z);
        for (c, &v) in self.comps.iter_mut().zip(values) {
            c[i] = v;
        }
    }

    /// Mutable slices of **all** components at once (disjoint borrows).
    pub fn comps_mut(&mut self) -> Vec<&mut [T]> {
        self.comps.iter_mut().map(|c| &mut c[..]).collect()
    }

    /// Mutable row segments of every component for row `(y, z)`, covering
    /// X indices `xs` — the write target of one lattice row update.
    pub fn rows_mut(&mut self, y: usize, z: usize, xs: std::ops::Range<usize>) -> Vec<&mut [T]> {
        let start = self.dim.idx(xs.start, y, z);
        let len = xs.len();
        self.comps
            .iter_mut()
            .map(|c| &mut c[start..start + len])
            .collect()
    }

    /// Sum over all components and sites as `f64` (e.g. LBM total mass).
    pub fn total(&self) -> f64 {
        self.comps
            .iter()
            .map(|c| c.iter().map(|v| v.to_f64()).sum::<f64>())
            .sum()
    }

    /// Copies every component of `src` into `self`.
    ///
    /// # Panics
    /// Panics on dimension or component-count mismatch.
    pub fn copy_from(&mut self, src: &Self) {
        assert_eq!(self.dim, src.dim, "SoaGrid::copy_from dimension mismatch");
        assert_eq!(self.q_count(), src.q_count(), "SoaGrid::copy_from arity");
        for (d, s) in self.comps.iter_mut().zip(&src.comps) {
            d.copy_from_slice(s);
        }
    }

    /// Footprint in bytes (Q · sites · ℰ_scalar); ℰ per paper is this
    /// divided by the site count, plus the flag byte.
    pub fn bytes(&self) -> usize {
        self.q_count() * self.dim.len() * T::BYTES
    }
}

/// Per-site classification for lattice methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CellKind {
    /// Regular fluid site: collide and stream.
    Fluid = 0,
    /// Solid obstacle: bounce-back.
    Obstacle = 1,
    /// Boundary site with fixed distributions (e.g. inlet/lid).
    Fixed = 2,
}

/// A byte flag per lattice site (the paper's "flag array").
#[derive(Clone, Debug)]
pub struct CellFlags {
    dim: Dim3,
    flags: AlignedVec<u8>,
}

impl CellFlags {
    /// All-fluid flags.
    pub fn all_fluid(dim: Dim3) -> Self {
        Self {
            dim,
            flags: AlignedVec::zeroed(dim.len()),
        }
    }

    /// Lattice extents.
    #[inline]
    pub fn dim(&self) -> Dim3 {
        self.dim
    }

    /// Kind of site `(x, y, z)`.
    #[inline(always)]
    pub fn get(&self, x: usize, y: usize, z: usize) -> CellKind {
        match self.flags[self.dim.idx(x, y, z)] {
            0 => CellKind::Fluid,
            1 => CellKind::Obstacle,
            _ => CellKind::Fixed,
        }
    }

    /// Sets the kind of site `(x, y, z)`.
    #[inline(always)]
    pub fn set(&mut self, x: usize, y: usize, z: usize, kind: CellKind) {
        let i = self.dim.idx(x, y, z);
        self.flags[i] = kind as u8;
    }

    /// Raw flag bytes in layout order.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.flags
    }

    /// Number of sites with the given kind.
    pub fn count(&self, kind: CellKind) -> usize {
        self.flags.iter().filter(|&&f| f == kind as u8).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_are_independent() {
        let d = Dim3::new(3, 2, 2);
        let mut g = SoaGrid::<f32>::zeros(d, 3);
        g.set(0, 1, 1, 1, 5.0);
        g.set(2, 1, 1, 1, 7.0);
        assert_eq!(g.get(0, 1, 1, 1), 5.0);
        assert_eq!(g.get(1, 1, 1, 1), 0.0);
        assert_eq!(g.get(2, 1, 1, 1), 7.0);
    }

    #[test]
    fn component_slices_are_unit_stride_over_sites() {
        let d = Dim3::new(4, 2, 1);
        let mut g = SoaGrid::<f64>::zeros(d, 2);
        for x in 0..4 {
            g.set(1, x, 0, 0, x as f64);
        }
        assert_eq!(&g.comp(1)[0..4], &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn site_round_trips() {
        let d = Dim3::cube(2);
        let mut g = SoaGrid::<f32>::zeros(d, 19);
        let vals: Vec<f32> = (0..19).map(|q| q as f32 * 0.5).collect();
        g.set_site(1, 0, 1, &vals);
        assert_eq!(g.site(1, 0, 1), vals);
        assert_eq!(g.site(0, 0, 0), vec![0.0; 19]);
    }

    #[test]
    fn total_sums_all_components() {
        let d = Dim3::cube(2);
        let mut g = SoaGrid::<f64>::zeros(d, 2);
        g.set(0, 0, 0, 0, 1.5);
        g.set(1, 1, 1, 1, 2.5);
        assert_eq!(g.total(), 4.0);
    }

    #[test]
    fn bytes_matches_paper_element_sizes() {
        // §VI-B: ℰ = 80 B/site in SP for 19 distributions + flag.
        let d = Dim3::cube(4);
        let g = SoaGrid::<f32>::zeros(d, 19);
        let flags = CellFlags::all_fluid(d);
        // Raw bytes/site: 19 SP distributions + 1 flag byte = 77; the paper
        // rounds this to ℰ = 80 (4*20) assuming a word-sized flag.
        let per_site = (g.bytes() + flags.as_slice().len()) / d.len();
        assert_eq!(per_site, 77);
        assert_eq!(g.bytes() / d.len(), 76);
    }

    #[test]
    fn flags_classify_sites() {
        let d = Dim3::cube(3);
        let mut f = CellFlags::all_fluid(d);
        assert_eq!(f.count(CellKind::Fluid), 27);
        f.set(1, 1, 1, CellKind::Obstacle);
        f.set(0, 0, 0, CellKind::Fixed);
        assert_eq!(f.get(1, 1, 1), CellKind::Obstacle);
        assert_eq!(f.get(0, 0, 0), CellKind::Fixed);
        assert_eq!(f.get(2, 2, 2), CellKind::Fluid);
        assert_eq!(f.count(CellKind::Fluid), 25);
        assert_eq!(f.count(CellKind::Obstacle), 1);
        assert_eq!(f.count(CellKind::Fixed), 1);
    }
}
