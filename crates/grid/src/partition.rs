//! The paper's flexible load-balancing scheme (§V-D).
//!
//! Each XY sub-plane is divided among **all** `T` threads — by rows when
//! there are enough rows, and by partial rows otherwise ("In case
//! `dimY < T`, each thread gets partial rows"). Every thread then performs
//! the same amount of external memory read/write and the same number of
//! stencil operations, which is what decouples the temporal factor `dim_T`
//! from the core count.
//!
//! The uniform mechanism here partitions the *flattened cell index space*
//! `[0, ny·nx)` evenly and re-exposes each thread's share as row segments
//! `(y, x-range)` so kernels still run unit-stride inner loops.

use std::ops::Range;

/// Splits `0..n` into `parts` contiguous ranges whose lengths differ by at
/// most one (first `n % parts` ranges get the extra element).
///
/// # Panics
/// Panics if `parts == 0`.
pub fn even_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    (0..parts).map(|k| even_range(n, parts, k)).collect()
}

/// The `k`-th range of [`even_ranges`]`(n, parts)` without allocating.
///
/// # Panics
/// Panics if `parts == 0` or `k >= parts`.
pub fn even_range(n: usize, parts: usize, k: usize) -> Range<usize> {
    assert!(parts > 0, "even_range: parts must be positive");
    assert!(k < parts, "even_range: part index out of range");
    let base = n / parts;
    let extra = n % parts;
    let start = k * base + k.min(extra);
    let len = base + usize::from(k < extra);
    start..start + len
}

/// One thread's share of an XY sub-plane: a run of cells inside row `y`,
/// covering local X indices `xs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowSegment {
    /// Row (local Y index within the sub-plane).
    pub y: usize,
    /// Local X index range within that row.
    pub xs: Range<usize>,
}

/// Decomposes a flattened cell range of an `nx`-wide plane into row
/// segments, preserving order.
///
/// `cells` indexes the plane in layout order (`idx = y * nx + x`).
pub fn row_segments(cells: Range<usize>, nx: usize) -> Vec<RowSegment> {
    assert!(nx > 0, "row_segments: nx must be positive");
    let mut out = Vec::new();
    let mut i = cells.start;
    while i < cells.end {
        let y = i / nx;
        let x0 = i % nx;
        let row_end = (y + 1) * nx;
        let end = row_end.min(cells.end);
        out.push(RowSegment {
            y,
            xs: x0..x0 + (end - i),
        });
        i = end;
    }
    out
}

/// The row segments assigned to thread `k` of `parts` for an `nx × ny`
/// sub-plane — the complete load-balancing scheme in one call.
pub fn plane_share(nx: usize, ny: usize, parts: usize, k: usize) -> Vec<RowSegment> {
    row_segments(even_range(nx * ny, parts, k), nx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_cover_exactly_once_and_balance() {
        for n in [0usize, 1, 7, 16, 100, 101] {
            for parts in [1usize, 2, 3, 4, 7, 16] {
                let rs = even_ranges(n, parts);
                assert_eq!(rs.len(), parts);
                // Coverage: concatenation is 0..n.
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
                // Balance: sizes differ by at most 1.
                let min = rs.iter().map(|r| r.len()).min().unwrap();
                let max = rs.iter().map(|r| r.len()).max().unwrap();
                assert!(max - min <= 1, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn even_range_matches_materialised_ranges() {
        let rs = even_ranges(23, 5);
        for (k, r) in rs.iter().enumerate() {
            assert_eq!(&even_range(23, 5, k), r);
        }
    }

    #[test]
    #[should_panic(expected = "parts must be positive")]
    fn zero_parts_panics() {
        even_range(10, 0, 0);
    }

    #[test]
    fn row_segments_split_at_row_boundaries() {
        // Plane 4 wide; cells 2..9 span rows 0,1,2 partially.
        let segs = row_segments(2..9, 4);
        assert_eq!(
            segs,
            vec![
                RowSegment { y: 0, xs: 2..4 },
                RowSegment { y: 1, xs: 0..4 },
                RowSegment { y: 2, xs: 0..1 },
            ]
        );
    }

    #[test]
    fn row_segments_full_rows_stay_whole() {
        let segs = row_segments(4..12, 4);
        assert_eq!(
            segs,
            vec![RowSegment { y: 1, xs: 0..4 }, RowSegment { y: 2, xs: 0..4 },]
        );
    }

    #[test]
    fn plane_share_partitions_whole_plane() {
        // Paper example: dimY = 360 rows over 4 threads → 90 whole rows each.
        let shares: Vec<_> = (0..4).map(|k| plane_share(360, 360, 4, k)).collect();
        for share in &shares {
            assert_eq!(share.len(), 90);
            assert!(share.iter().all(|s| s.xs == (0..360)));
        }

        // dimY < T: partial rows appear, every cell covered exactly once.
        let nx = 8;
        let ny = 3;
        let parts = 5;
        let mut seen = vec![0u8; nx * ny];
        for k in 0..parts {
            for seg in plane_share(nx, ny, parts, k) {
                for x in seg.xs.clone() {
                    seen[seg.y * nx + x] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn plane_share_is_balanced_in_cells() {
        let nx = 13;
        let ny = 7;
        let parts = 4;
        let cells: Vec<usize> = (0..parts)
            .map(|k| {
                plane_share(nx, ny, parts, k)
                    .iter()
                    .map(|s| s.xs.len())
                    .sum()
            })
            .collect();
        let min = *cells.iter().min().unwrap();
        let max = *cells.iter().max().unwrap();
        assert!(max - min <= 1);
        assert_eq!(cells.iter().sum::<usize>(), nx * ny);
    }
}
