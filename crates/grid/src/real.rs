//! Scalar element abstraction.
//!
//! Stencil and lattice kernels are generic over the floating-point type so
//! that the single-precision and double-precision variants of every
//! experiment in the paper share one implementation. The trait deliberately
//! exposes only what the kernels need, plus the element size `BYTES` used by
//! the planner (ℰ in the paper's equations).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A real scalar usable as a grid element: `f32` or `f64`.
pub trait Real:
    Copy
    + Default
    + Debug
    + Display
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Sum
    + 'static
{
    /// Size of one element in bytes (ℰ for scalar grids).
    const BYTES: usize;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64` (exact for representable constants).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Fused (or contracted) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE-754 maximum of two values.
    fn max(self, other: Self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;

    /// Relative-or-absolute closeness test used by verification helpers.
    ///
    /// Returns `true` when `|self - other| <= tol * max(1, |self|, |other|)`.
    fn close_to(self, other: Self, tol: f64) -> bool {
        let a = self.to_f64();
        let b = other.to_f64();
        let scale = 1.0_f64.max(a.abs()).max(b.abs());
        (a - b).abs() <= tol * scale
    }
}

macro_rules! impl_real {
    ($t:ty, $bytes:expr) => {
        impl Real for $t {
            const BYTES: usize = $bytes;
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                // `f32::mul_add` maps to an fma instruction where available;
                // kernels that must match non-fma references use `a * b + c`
                // explicitly instead of this method.
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
        }
    };
}

impl_real!(f32, 4);
impl_real!(f64, 8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_type_sizes() {
        assert_eq!(<f32 as Real>::BYTES, std::mem::size_of::<f32>());
        assert_eq!(<f64 as Real>::BYTES, std::mem::size_of::<f64>());
    }

    #[test]
    fn conversion_round_trips_small_integers() {
        for i in -100..=100 {
            let v = i as f64;
            assert_eq!(f32::from_f64(v).to_f64(), v);
            assert_eq!(f64::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn mul_add_matches_expression_for_exact_inputs() {
        let x: f64 = 3.0;
        assert_eq!(x.mul_add(2.0, 1.0), 7.0);
        let y: f32 = 1.5;
        assert_eq!(Real::mul_add(y, 4.0, 2.0), 8.0);
    }

    #[test]
    fn close_to_is_relative_for_large_magnitudes() {
        let a: f64 = 1.0e12;
        let b = a * (1.0 + 1.0e-13);
        assert!(a.close_to(b, 1e-12));
        assert!(!a.close_to(a * 1.001, 1e-12));
    }

    #[test]
    fn close_to_is_absolute_near_zero() {
        let a: f32 = 0.0;
        assert!(a.close_to(1.0e-9, 1e-8));
        assert!(!a.close_to(1.0e-3, 1e-8));
    }
}
