//! Cache-line aligned heap storage.
//!
//! SIMD stencil kernels want row starts aligned so the common-case loads
//! and the occasional streaming stores hit aligned addresses; `Vec<T>` only
//! guarantees `align_of::<T>()`. `AlignedVec` allocates with 64-byte
//! alignment and otherwise behaves like a fixed-capacity boxed slice.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

use crate::CACHE_LINE;

/// A heap buffer of `T` with 64-byte (cache line) aligned base address.
///
/// The length is fixed at construction; elements are zero-initialised.
/// `T` must not need drop glue (grids hold plain scalars and flags).
pub struct AlignedVec<T: Copy> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: `AlignedVec` uniquely owns its allocation; `T: Copy + Send/Sync`
// bounds on the public constructors make shared/sent access sound exactly
// as for `Vec<T>`.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    /// Allocates a zero-initialised buffer of `len` elements.
    ///
    /// # Panics
    /// Panics if the byte size overflows `isize` or allocation fails.
    pub fn zeroed(len: usize) -> Self {
        assert!(
            std::mem::size_of::<T>() > 0,
            "zero-sized elements unsupported"
        );
        if len == 0 {
            return Self {
                ptr: NonNull::dangling(),
                len: 0,
            };
        }
        let align = CACHE_LINE.max(std::mem::align_of::<T>());
        let layout = Layout::array::<T>(len)
            .and_then(|l| l.align_to(align))
            .expect("AlignedVec: layout overflow");
        // SAFETY: layout has non-zero size (len > 0, sizeof(T) > 0).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout)
        };
        Self { ptr, len }
    }

    /// Allocates a buffer of `len` copies of `value`.
    pub fn splat(len: usize, value: T) -> Self {
        let mut v = Self::zeroed(len);
        v.fill(value);
        v
    }

    /// Builds a buffer from a slice, copying its contents.
    pub fn from_slice(src: &[T]) -> Self {
        let mut v = Self::zeroed(src.len());
        v.copy_from_slice(src);
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base pointer (64-byte aligned when non-empty).
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }

    /// Mutable base pointer (64-byte aligned when non-empty).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr.as_ptr()
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: `ptr` is valid for `len` initialised elements.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: `ptr` is valid for `len` initialised elements and we have
        // unique access through `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        let align = CACHE_LINE.max(std::mem::align_of::<T>());
        let layout = Layout::array::<T>(self.len)
            .and_then(|l| l.align_to(align))
            .expect("AlignedVec: layout overflow");
        // SAFETY: allocated in `zeroed` with this exact layout.
        unsafe { dealloc(self.ptr.as_ptr().cast(), layout) };
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self)
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedVec")
            .field("len", &self.len)
            .field("data", &&self[..self.len.min(8)])
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_pointer_is_cache_line_aligned() {
        for len in [1usize, 3, 64, 1000, 4097] {
            let v = AlignedVec::<f32>::zeroed(len);
            assert_eq!(v.as_ptr() as usize % CACHE_LINE, 0, "len={len}");
            assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn zeroed_is_all_zero() {
        let v = AlignedVec::<f64>::zeroed(513);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn splat_fills_every_element() {
        let v = AlignedVec::<f32>::splat(100, 2.5);
        assert!(v.iter().all(|&x| x == 2.5));
    }

    #[test]
    fn from_slice_round_trips() {
        let src: Vec<u32> = (0..777).collect();
        let v = AlignedVec::from_slice(&src);
        assert_eq!(&v[..], &src[..]);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedVec::<f32>::splat(16, 1.0);
        let b = a.clone();
        a[0] = 9.0;
        assert_eq!(b[0], 1.0);
        assert_eq!(a[0], 9.0);
    }

    #[test]
    fn empty_buffer_is_usable() {
        let v = AlignedVec::<f64>::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(&v[..], &[] as &[f64]);
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut v = AlignedVec::<u8>::zeroed(64);
        v[63] = 7;
        assert_eq!(v[63], 7);
        assert_eq!(v[0], 0);
    }
}
