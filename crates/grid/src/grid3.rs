//! Dense 3-D scalar grid.

use crate::{AlignedVec, Dim3, Real, Region3};

/// A dense 3-D grid of scalars, row-major with X fastest, backed by
/// 64-byte-aligned storage.
#[derive(Clone, Debug)]
pub struct Grid3<T: Real> {
    dim: Dim3,
    data: AlignedVec<T>,
}

impl<T: Real> Grid3<T> {
    /// Creates a zero-filled grid.
    pub fn zeros(dim: Dim3) -> Self {
        Self {
            dim,
            data: AlignedVec::zeroed(dim.len()),
        }
    }

    /// Creates a grid filled with `value`.
    pub fn splat(dim: Dim3, value: T) -> Self {
        Self {
            dim,
            data: AlignedVec::splat(dim.len(), value),
        }
    }

    /// Creates a grid by evaluating `f(x, y, z)` at every point.
    pub fn from_fn(dim: Dim3, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let mut g = Self::zeros(dim);
        for z in 0..dim.nz {
            for y in 0..dim.ny {
                let row = g.row_mut(y, z);
                for (x, slot) in row.iter_mut().enumerate() {
                    *slot = f(x, y, z);
                }
            }
        }
        g
    }

    /// Grid extents.
    #[inline]
    pub fn dim(&self) -> Dim3 {
        self.dim
    }

    /// Immutable view of the whole backing slice (layout order).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the whole backing slice (layout order).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Value at `(x, y, z)`.
    #[inline(always)]
    pub fn get(&self, x: usize, y: usize, z: usize) -> T {
        self.data[self.dim.idx(x, y, z)]
    }

    /// Sets the value at `(x, y, z)`.
    #[inline(always)]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let i = self.dim.idx(x, y, z);
        self.data[i] = v;
    }

    /// The X row at `(y, z)` as a slice.
    #[inline]
    pub fn row(&self, y: usize, z: usize) -> &[T] {
        let start = self.dim.idx(0, y, z);
        &self.data[start..start + self.dim.nx]
    }

    /// The X row at `(y, z)` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, y: usize, z: usize) -> &mut [T] {
        let start = self.dim.idx(0, y, z);
        let nx = self.dim.nx;
        &mut self.data[start..start + nx]
    }

    /// The XY plane at `z` as a slice of `nx*ny` values.
    #[inline]
    pub fn plane(&self, z: usize) -> &[T] {
        let start = self.dim.idx(0, 0, z);
        &self.data[start..start + self.dim.plane_len()]
    }

    /// The XY plane at `z` as a mutable slice.
    #[inline]
    pub fn plane_mut(&mut self, z: usize) -> &mut [T] {
        let start = self.dim.idx(0, 0, z);
        let n = self.dim.plane_len();
        &mut self.data[start..start + n]
    }

    /// Copies every value of `src` into `self`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn copy_from(&mut self, src: &Self) {
        assert_eq!(self.dim, src.dim, "Grid3::copy_from dimension mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Fills a region with `value`.
    pub fn fill_region(&mut self, region: &Region3, value: T) {
        for z in region.zs() {
            for y in region.ys() {
                let row = self.row_mut(y, z);
                row[region.xs()].fill(value);
            }
        }
    }

    /// Maximum absolute difference with another grid over `region`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn max_abs_diff(&self, other: &Self, region: &Region3) -> f64 {
        assert_eq!(
            self.dim, other.dim,
            "Grid3::max_abs_diff dimension mismatch"
        );
        let mut m = 0.0f64;
        for (x, y, z) in region.points() {
            let d = (self.get(x, y, z).to_f64() - other.get(x, y, z).to_f64()).abs();
            m = m.max(d);
        }
        m
    }

    /// Asserts per-point closeness with `other` over `region`, reporting the
    /// first offending point. `tol` is relative-or-absolute (see
    /// [`Real::close_to`]).
    ///
    /// # Panics
    /// Panics on dimension mismatch or on the first point exceeding `tol`.
    pub fn assert_close(&self, other: &Self, region: &Region3, tol: f64) {
        assert_eq!(
            self.dim, other.dim,
            "Grid3::assert_close dimension mismatch"
        );
        for (x, y, z) in region.points() {
            let a = self.get(x, y, z);
            let b = other.get(x, y, z);
            assert!(
                a.close_to(b, tol),
                "grids differ at ({x},{y},{z}): {a} vs {b} (tol {tol})"
            );
        }
    }

    /// Sum of all values as `f64` (diagnostics; not a compensated sum).
    pub fn total(&self) -> f64 {
        self.data.iter().map(|v| v.to_f64()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_places_values_by_coordinates() {
        let d = Dim3::new(3, 4, 5);
        let g = Grid3::<f64>::from_fn(d, |x, y, z| (x + 10 * y + 100 * z) as f64);
        for z in 0..d.nz {
            for y in 0..d.ny {
                for x in 0..d.nx {
                    assert_eq!(g.get(x, y, z), (x + 10 * y + 100 * z) as f64);
                }
            }
        }
    }

    #[test]
    fn rows_and_planes_are_contiguous_views() {
        let d = Dim3::new(4, 3, 2);
        let g = Grid3::<f32>::from_fn(d, |x, y, z| d.idx(x, y, z) as f32);
        assert_eq!(g.row(1, 1), &[16.0, 17.0, 18.0, 19.0]);
        assert_eq!(g.plane(1).len(), 12);
        assert_eq!(g.plane(1)[0], 12.0);
    }

    #[test]
    fn row_base_addresses_follow_layout() {
        let d = Dim3::new(8, 2, 2);
        let g = Grid3::<f64>::zeros(d);
        let base = g.as_slice().as_ptr() as usize;
        let row = g.row(1, 1).as_ptr() as usize;
        assert_eq!((row - base) / std::mem::size_of::<f64>(), d.idx(0, 1, 1));
    }

    #[test]
    fn fill_region_touches_only_the_region() {
        let d = Dim3::cube(4);
        let mut g = Grid3::<f32>::zeros(d);
        let r = Region3::new(1, 3, 1, 3, 1, 3);
        g.fill_region(&r, 5.0);
        for (x, y, z) in d.full_region().points() {
            let expect = if r.contains(x, y, z) { 5.0 } else { 0.0 };
            assert_eq!(g.get(x, y, z), expect);
        }
    }

    #[test]
    fn max_abs_diff_sees_the_largest_deviation() {
        let d = Dim3::cube(3);
        let a = Grid3::<f64>::splat(d, 1.0);
        let mut b = a.clone();
        b.set(2, 1, 0, 1.5);
        b.set(0, 0, 2, 0.25);
        assert_eq!(a.max_abs_diff(&b, &d.full_region()), 0.75);
        // Restricting the region hides the larger deviation.
        let r = Region3::new(0, 3, 0, 3, 0, 1);
        assert_eq!(a.max_abs_diff(&b, &r), 0.5);
    }

    #[test]
    #[should_panic(expected = "grids differ")]
    fn assert_close_reports_mismatch() {
        let d = Dim3::cube(2);
        let a = Grid3::<f32>::splat(d, 1.0);
        let b = Grid3::<f32>::splat(d, 2.0);
        a.assert_close(&b, &d.full_region(), 1e-6);
    }

    #[test]
    fn copy_from_duplicates_contents() {
        let d = Dim3::new(5, 2, 2);
        let src = Grid3::<f64>::from_fn(d, |x, _, _| x as f64);
        let mut dst = Grid3::<f64>::zeros(d);
        dst.copy_from(&src);
        assert_eq!(dst.as_slice(), src.as_slice());
    }
}
