//! Jacobi-style read/write grid pair.

use crate::{Dim3, Grid3, Real};

/// A pair of grids for Jacobi-type sweeps: one read, one written, swapped
/// between time steps (paper §IV: "the roles of the grids are swapped").
#[derive(Clone, Debug)]
pub struct DoubleGrid<T: Real> {
    grids: [Grid3<T>; 2],
    src_is_zero: bool,
}

impl<T: Real> DoubleGrid<T> {
    /// Creates a pair of zero grids.
    pub fn zeros(dim: Dim3) -> Self {
        Self {
            grids: [Grid3::zeros(dim), Grid3::zeros(dim)],
            src_is_zero: true,
        }
    }

    /// Creates a pair whose source grid is `initial`; the destination starts
    /// as a copy so that boundary (never-written) cells carry the correct
    /// Dirichlet values after a sweep.
    pub fn from_initial(initial: Grid3<T>) -> Self {
        let dst = initial.clone();
        Self {
            grids: [initial, dst],
            src_is_zero: true,
        }
    }

    /// Grid extents.
    pub fn dim(&self) -> Dim3 {
        self.grids[0].dim()
    }

    /// The grid read in the current time step.
    #[inline]
    pub fn src(&self) -> &Grid3<T> {
        &self.grids[if self.src_is_zero { 0 } else { 1 }]
    }

    /// The grid written in the current time step.
    #[inline]
    pub fn dst(&self) -> &Grid3<T> {
        &self.grids[if self.src_is_zero { 1 } else { 0 }]
    }

    /// Mutable destination grid.
    #[inline]
    pub fn dst_mut(&mut self) -> &mut Grid3<T> {
        &mut self.grids[if self.src_is_zero { 1 } else { 0 }]
    }

    /// Both grids at once: `(source, destination)`, destination mutable.
    #[inline]
    pub fn pair_mut(&mut self) -> (&Grid3<T>, &mut Grid3<T>) {
        let (a, b) = self.grids.split_at_mut(1);
        if self.src_is_zero {
            (&a[0], &mut b[0])
        } else {
            (&b[0], &mut a[0])
        }
    }

    /// Swaps source and destination (O(1), no copy).
    #[inline]
    pub fn swap(&mut self) {
        self.src_is_zero = !self.src_is_zero;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_exchanges_roles_without_copying() {
        let d = Dim3::cube(3);
        let mut dg = DoubleGrid::<f64>::zeros(d);
        dg.dst_mut().set(1, 1, 1, 42.0);
        assert_eq!(dg.src().get(1, 1, 1), 0.0);
        dg.swap();
        assert_eq!(dg.src().get(1, 1, 1), 42.0);
        assert_eq!(dg.dst().get(1, 1, 1), 0.0);
        dg.swap();
        assert_eq!(dg.src().get(1, 1, 1), 0.0);
    }

    #[test]
    fn from_initial_copies_boundary_into_destination() {
        let d = Dim3::cube(4);
        let init = Grid3::<f32>::from_fn(d, |x, y, z| (x + y + z) as f32);
        let dg = DoubleGrid::from_initial(init.clone());
        // Destination starts as a copy: boundary cells that a sweep never
        // writes will still hold their Dirichlet values after swap.
        assert_eq!(dg.dst().as_slice(), init.as_slice());
    }

    #[test]
    fn pair_mut_yields_distinct_grids() {
        let d = Dim3::cube(2);
        let mut dg = DoubleGrid::<f64>::zeros(d);
        {
            let (src, dst) = dg.pair_mut();
            assert_eq!(src.get(0, 0, 0), 0.0);
            dst.set(0, 0, 0, 7.0);
        }
        assert_eq!(dg.dst().get(0, 0, 0), 7.0);
        assert_eq!(dg.src().get(0, 0, 0), 0.0);
        dg.swap();
        let (src, dst) = dg.pair_mut();
        assert_eq!(src.get(0, 0, 0), 7.0);
        assert_eq!(dst.get(0, 0, 0), 0.0);
    }
}
