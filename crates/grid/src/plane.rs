//! Ring buffer of XY sub-planes.
//!
//! 2.5-D blocking keeps `2R+1` XY sub-planes resident while streaming Z;
//! the 3.5-D temporal pipeline keeps one ring of `2R+2` sub-planes per
//! time level (the extra plane decouples producer and consumer levels so
//! every level advances in the same outer Z step — paper §V-C). A global
//! plane index `z` maps to slot `z % slots`, exactly the paper's
//! `Buffer[z_s % (2R+2)]` addressing.

use crate::{AlignedVec, Real};

/// A ring of `slots` XY sub-planes, each `plane_len` elements, in one
/// contiguous 64-byte-aligned allocation.
#[derive(Clone, Debug)]
pub struct PlaneRing<T: Real> {
    plane_len: usize,
    slots: usize,
    data: AlignedVec<T>,
}

impl<T: Real> PlaneRing<T> {
    /// Creates a zeroed ring.
    ///
    /// # Panics
    /// Panics if `slots == 0` or `plane_len == 0`.
    pub fn new(slots: usize, plane_len: usize) -> Self {
        assert!(slots > 0, "PlaneRing: need at least one slot");
        assert!(plane_len > 0, "PlaneRing: plane_len must be positive");
        Self {
            plane_len,
            slots,
            data: AlignedVec::zeroed(slots * plane_len),
        }
    }

    /// Number of slots (distinct resident planes).
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Elements per plane.
    #[inline]
    pub fn plane_len(&self) -> usize {
        self.plane_len
    }

    /// Total footprint in bytes (what must fit in 𝒞 along with the other
    /// time levels).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.slots * self.plane_len * T::BYTES
    }

    /// Slot index for global plane `z`.
    #[inline(always)]
    pub fn slot_of(&self, z: usize) -> usize {
        z % self.slots
    }

    /// The plane stored for global index `z` (i.e. slot `z % slots`).
    #[inline]
    pub fn plane(&self, z: usize) -> &[T] {
        let s = self.slot_of(z) * self.plane_len;
        &self.data[s..s + self.plane_len]
    }

    /// Mutable plane for global index `z`.
    #[inline]
    pub fn plane_mut(&mut self, z: usize) -> &mut [T] {
        let s = self.slot_of(z) * self.plane_len;
        &mut self.data[s..s + self.plane_len]
    }

    /// Raw base pointer of the plane for global index `z`.
    ///
    /// Used by the parallel executor, where multiple threads write disjoint
    /// row ranges of the same plane; the caller is responsible for
    /// disjointness.
    #[inline]
    pub fn plane_ptr(&self, z: usize) -> *const T {
        self.plane(z).as_ptr()
    }

    /// Element range of the slot for global plane `z` within
    /// [`PlaneRing::as_mut_slice`]'s backing storage.
    #[inline]
    pub fn plane_range(&self, z: usize) -> std::ops::Range<usize> {
        let s = self.slot_of(z) * self.plane_len;
        s..s + self.plane_len
    }

    /// The whole backing storage (all slots, slot-major), for callers that
    /// need to share the ring across threads writing disjoint rows.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies `src` into the slot for global plane `z`.
    ///
    /// # Panics
    /// Panics if `src.len() != plane_len`.
    pub fn load_plane(&mut self, z: usize, src: &[T]) {
        self.plane_mut(z).copy_from_slice(src);
    }

    /// Fills every slot with `value` (mostly for tests).
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_addressing_is_modular() {
        let ring = PlaneRing::<f32>::new(4, 6);
        assert_eq!(ring.slot_of(0), 0);
        assert_eq!(ring.slot_of(3), 3);
        assert_eq!(ring.slot_of(4), 0);
        assert_eq!(ring.slot_of(11), 3);
    }

    #[test]
    fn planes_with_same_slot_alias() {
        let mut ring = PlaneRing::<f64>::new(4, 3);
        ring.plane_mut(2).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(ring.plane(6), &[1.0, 2.0, 3.0]); // 6 % 4 == 2
        ring.plane_mut(6)[0] = 9.0;
        assert_eq!(ring.plane(2)[0], 9.0);
    }

    #[test]
    fn distinct_slots_do_not_alias() {
        let mut ring = PlaneRing::<f32>::new(3, 2);
        for z in 0..3 {
            let v = z as f32;
            ring.plane_mut(z).copy_from_slice(&[v, v]);
        }
        for z in 0..3 {
            assert_eq!(ring.plane(z), &[z as f32, z as f32]);
        }
    }

    #[test]
    fn ring_capacity_matches_35d_requirement() {
        // Paper: dim_T time levels × (2R+2) sub-planes each.
        let r = 1usize;
        let dim_t = 3usize;
        let dim_x = 8usize;
        let dim_y = 8usize;
        let rings: Vec<_> = (0..dim_t)
            .map(|_| PlaneRing::<f32>::new(2 * r + 2, dim_x * dim_y))
            .collect();
        let total: usize = rings.iter().map(|r| r.bytes()).sum();
        assert_eq!(total, 4 * dim_t * (2 * r + 2) * dim_x * dim_y);
    }

    #[test]
    fn load_plane_copies() {
        let mut ring = PlaneRing::<f64>::new(2, 4);
        ring.load_plane(5, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ring.plane(5), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ring.plane(4), &[0.0; 4]);
    }

    #[test]
    #[should_panic]
    fn load_plane_rejects_wrong_length() {
        let mut ring = PlaneRing::<f32>::new(2, 4);
        ring.load_plane(0, &[1.0, 2.0]);
    }
}
