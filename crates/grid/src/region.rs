//! Axis-aligned sub-regions of a grid.

use std::fmt;
use std::ops::Range;

/// A half-open axis-aligned box `[x0,x1) × [y0,y1) × [z0,z1)`.
///
/// Used for tile interiors, ghost extents and verification regions.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region3 {
    /// Inclusive X start.
    pub x0: usize,
    /// Exclusive X end.
    pub x1: usize,
    /// Inclusive Y start.
    pub y0: usize,
    /// Exclusive Y end.
    pub y1: usize,
    /// Inclusive Z start.
    pub z0: usize,
    /// Exclusive Z end.
    pub z1: usize,
}

impl Region3 {
    /// Creates a region; empty ranges are normalised to `start == end`.
    pub const fn new(x0: usize, x1: usize, y0: usize, y1: usize, z0: usize, z1: usize) -> Self {
        Self {
            x0,
            x1: if x1 < x0 { x0 } else { x1 },
            y0,
            y1: if y1 < y0 { y0 } else { y1 },
            z0,
            z1: if z1 < z0 { z0 } else { z1 },
        }
    }

    /// Extent along X.
    #[inline]
    pub const fn nx(&self) -> usize {
        self.x1 - self.x0
    }
    /// Extent along Y.
    #[inline]
    pub const fn ny(&self) -> usize {
        self.y1 - self.y0
    }
    /// Extent along Z.
    #[inline]
    pub const fn nz(&self) -> usize {
        self.z1 - self.z0
    }

    /// Number of points in the region.
    #[inline]
    pub const fn len(&self) -> usize {
        self.nx() * self.ny() * self.nz()
    }

    /// Whether the region contains no points.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// X range.
    #[inline]
    pub const fn xs(&self) -> Range<usize> {
        self.x0..self.x1
    }
    /// Y range.
    #[inline]
    pub const fn ys(&self) -> Range<usize> {
        self.y0..self.y1
    }
    /// Z range.
    #[inline]
    pub const fn zs(&self) -> Range<usize> {
        self.z0..self.z1
    }

    /// Point membership.
    #[inline]
    pub const fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1 && z >= self.z0 && z < self.z1
    }

    /// Shrinks the region by `m` on every face (clamping to empty).
    pub const fn shrink(&self, m: usize) -> Self {
        Self::new(
            self.x0 + m,
            self.x1.saturating_sub(m),
            self.y0 + m,
            self.y1.saturating_sub(m),
            self.z0 + m,
            self.z1.saturating_sub(m),
        )
    }

    /// Shrinks only in X and Y — the shape of the correct interior of an XY
    /// tile after `dim_T` time steps of radius-R blocking (`m = R·dim_T`).
    pub const fn shrink_xy(&self, m: usize) -> Self {
        Self::new(
            self.x0 + m,
            self.x1.saturating_sub(m),
            self.y0 + m,
            self.y1.saturating_sub(m),
            self.z0,
            self.z1,
        )
    }

    /// Intersection of two regions.
    pub fn intersect(&self, o: &Self) -> Self {
        Self::new(
            self.x0.max(o.x0),
            self.x1.min(o.x1),
            self.y0.max(o.y0),
            self.y1.min(o.y1),
            self.z0.max(o.z0),
            self.z1.min(o.z1),
        )
    }

    /// Iterates points in layout order (z, then y, then x).
    pub fn points(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let r = *self;
        r.zs()
            .flat_map(move |z| r.ys().flat_map(move |y| r.xs().map(move |x| (x, y, z))))
    }
}

impl fmt::Debug for Region3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{},{})x[{},{})x[{},{})",
            self.x0, self.x1, self.y0, self.y1, self.z0, self.z1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_contains_agree() {
        let r = Region3::new(1, 4, 2, 5, 0, 2);
        assert_eq!(r.len(), 3 * 3 * 2);
        assert!(r.contains(1, 2, 0));
        assert!(r.contains(3, 4, 1));
        assert!(!r.contains(4, 2, 0));
        assert!(!r.contains(1, 5, 0));
        assert!(!r.contains(1, 2, 2));
    }

    #[test]
    fn degenerate_ranges_normalise_to_empty() {
        let r = Region3::new(5, 3, 0, 2, 0, 2);
        assert!(r.is_empty());
        assert_eq!(r.nx(), 0);
    }

    #[test]
    fn shrink_clamps_to_empty() {
        let r = Region3::new(0, 4, 0, 4, 0, 4);
        assert_eq!(r.shrink(1), Region3::new(1, 3, 1, 3, 1, 3));
        assert!(r.shrink(2).is_empty());
        assert!(r.shrink(100).is_empty());
    }

    #[test]
    fn shrink_xy_preserves_z() {
        let r = Region3::new(0, 10, 0, 10, 3, 7);
        let s = r.shrink_xy(2);
        assert_eq!(s, Region3::new(2, 8, 2, 8, 3, 7));
    }

    #[test]
    fn intersect_is_commutative_and_bounded() {
        let a = Region3::new(0, 5, 0, 5, 0, 5);
        let b = Region3::new(3, 8, 2, 4, 1, 9);
        let i = a.intersect(&b);
        assert_eq!(i, b.intersect(&a));
        assert_eq!(i, Region3::new(3, 5, 2, 4, 1, 5));
        let disjoint = Region3::new(9, 12, 0, 1, 0, 1);
        assert!(a.intersect(&disjoint).is_empty());
    }

    #[test]
    fn points_visits_each_point_once_in_layout_order() {
        let r = Region3::new(1, 3, 0, 2, 4, 6);
        let pts: Vec<_> = r.points().collect();
        assert_eq!(pts.len(), r.len());
        assert_eq!(pts[0], (1, 0, 4));
        assert_eq!(pts[1], (2, 0, 4));
        assert_eq!(pts[2], (1, 1, 4));
        assert_eq!(*pts.last().unwrap(), (2, 1, 5));
        let mut sorted = pts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), pts.len());
    }
}
