//! Grid substrate for the `threefive` 3.5-D blocking library.
//!
//! This crate provides the storage and geometry layer every other crate
//! builds on:
//!
//! * [`Dim3`] / [`Region3`] — grid geometry with the X axis fastest-varying,
//!   matching the layout assumed throughout Nguyen et al. (SC 2010).
//! * [`AlignedVec`] — cache-line (64-byte) aligned heap storage, so SIMD
//!   kernels can use aligned loads/stores on row starts.
//! * [`Grid3`] — a dense 3-D scalar grid (row-major, X fastest).
//! * [`DoubleGrid`] — the Jacobi-style read/write grid pair with O(1) swap.
//! * [`SoaGrid`] — structure-of-arrays storage for multi-component lattices
//!   (e.g. the 19 distribution functions of D3Q19 LBM) plus a flag array.
//! * [`PlaneRing`] — the ring buffer of XY sub-planes at the heart of
//!   2.5-D streaming and the 3.5-D temporal pipeline.
//! * [`partition`] — the paper's flexible load-balancing scheme: split rows
//!   (or any index range) evenly across threads so every thread performs
//!   the same amount of DRAM traffic and compute.

#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod aligned;
mod dim;
mod double;
mod grid3;
pub mod partition;
mod plane;
mod real;
mod region;
mod soa;

pub use aligned::AlignedVec;
pub use dim::Dim3;
pub use double::DoubleGrid;
pub use grid3::Grid3;
pub use plane::PlaneRing;
pub use real::Real;
pub use region::Region3;
pub use soa::{CellFlags, CellKind, SoaGrid};

/// Cache-line size (bytes) assumed for alignment and traffic accounting.
pub const CACHE_LINE: usize = 64;
