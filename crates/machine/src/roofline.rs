//! The roofline predictor: `perf = min(compute limit, bandwidth limit)`.
//!
//! Two calibrated constants map peak numbers to what stencil code actually
//! sustains; both are fit once against the paper's *compute-bound*
//! observations and then reused for every prediction:
//!
//! * [`CPU_ALU_EFF`] — the Core i7 sustains ≈ 62% of peak instruction
//!   throughput on stencil inner loops (calibrated from the paper's
//!   3,900 MUPS compute-bound 7-point SP figure: 3900·16·1.02/102400).
//! * [`GPU_ALU_EFF`] / [`GPU_ALU_EFF_TUNED`] — the GTX 285 sustains ≈ 75%
//!   before and ≈ 95% after the paper's ILP tuning (unrolling +
//!   multi-update amortization, §VII-C).
//!
//! Bandwidth limits use the machine's *achieved* bandwidth (§III-E), with
//! a per-scenario efficiency for access patterns that underuse DRAM bursts
//! (the GPU's ghost-fragmented tile loads sustain ≈ 64%, calibrated from
//! the spatially-blocked 9,234 MUPS bar of Figure 5(b)).

use crate::{Machine, Precision};

/// CPU fraction of peak instruction throughput sustained by stencil loops.
pub const CPU_ALU_EFF: f64 = 0.62;
/// GPU fraction of usable instruction throughput before ILP tuning.
pub const GPU_ALU_EFF: f64 = 0.75;
/// GPU fraction after unrolling and per-thread multi-update (§VII-C).
pub const GPU_ALU_EFF_TUNED: f64 = 0.95;
/// GPU DRAM efficiency for tile loads fragmented by ghost regions.
pub const GPU_TILE_BW_EFF: f64 = 0.64;
/// GPU DRAM efficiency for the register-pipelined 3.5-D kernel, whose
/// `dimX = 32` tiles load full warp-coalesced rows.
pub const GPU_35D_BW_EFF: f64 = 0.70;

/// Which resource bounds a prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// Limited by instruction throughput.
    Compute,
    /// Limited by DRAM bandwidth.
    Bandwidth,
}

/// One point on the roofline: everything a prediction needs.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Label for reports (e.g. "3.5D blocking").
    pub label: &'static str,
    /// DRAM bytes per committed update (including overestimation and
    /// write-allocate where applicable).
    pub bytes_per_update: f64,
    /// Instructions per committed update after SIMD division (including
    /// ghost recomputation).
    pub ops_per_update: f64,
    /// Fraction of usable compute sustained.
    pub alu_eff: f64,
    /// Fraction of achieved bandwidth sustained.
    pub bw_eff: f64,
}

/// A predicted throughput.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Scenario label.
    pub label: &'static str,
    /// Million updates per second.
    pub mups: f64,
    /// Which roof was hit.
    pub bound: Bound,
}

/// Evaluates a scenario on a machine.
pub fn predict(m: &Machine, p: Precision, s: &Scenario) -> Prediction {
    let compute = m.usable_gops(p) * 1e9 * s.alu_eff / s.ops_per_update;
    let bandwidth = m.achieved_bw_gbs * 1e9 * s.bw_eff / s.bytes_per_update;
    let (rate, bound) = if compute <= bandwidth {
        (compute, Bound::Compute)
    } else {
        (bandwidth, Bound::Bandwidth)
    };
    Prediction {
        label: s.label,
        mups: rate / 1e6,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{core_i7, gtx285};

    #[test]
    fn compute_and_bandwidth_roofs_select_correctly() {
        let m = core_i7();
        // Absurdly heavy compute → compute bound.
        let s = Scenario {
            label: "heavy",
            bytes_per_update: 1.0,
            ops_per_update: 1e6,
            alu_eff: 1.0,
            bw_eff: 1.0,
        };
        assert_eq!(predict(&m, Precision::Sp, &s).bound, Bound::Compute);
        // Absurdly heavy traffic → bandwidth bound.
        let s = Scenario {
            label: "fat",
            bytes_per_update: 1e6,
            ops_per_update: 1.0,
            alu_eff: 1.0,
            bw_eff: 1.0,
        };
        assert_eq!(predict(&m, Precision::Sp, &s).bound, Bound::Bandwidth);
    }

    #[test]
    fn calibration_reproduces_compute_bound_seven_point() {
        // The constant was fit so that 3.5-D-blocked 7-point SP on Core i7
        // lands near the paper's 3,900 MUPS, compute bound.
        let m = core_i7();
        let s = Scenario {
            label: "3.5D",
            bytes_per_update: 8.0 * 1.02 / 2.0,
            ops_per_update: 16.0 * 1.02,
            alu_eff: CPU_ALU_EFF,
            bw_eff: 1.0,
        };
        let p = predict(&m, Precision::Sp, &s);
        assert_eq!(p.bound, Bound::Compute);
        assert!((p.mups - 3900.0).abs() / 3900.0 < 0.05, "{}", p.mups);
    }

    #[test]
    fn gpu_spatial_blocking_is_bandwidth_bound_at_paper_rate() {
        // Fig 5(b): spatial blocking reaches ~9,234 MUPS, bandwidth bound.
        let m = gtx285();
        let s = Scenario {
            label: "spatial",
            bytes_per_update: 8.0 * 1.13,
            ops_per_update: 16.0,
            alu_eff: GPU_ALU_EFF,
            bw_eff: GPU_TILE_BW_EFF,
        };
        let p = predict(&m, Precision::Sp, &s);
        assert_eq!(p.bound, Bound::Bandwidth);
        assert!((p.mups - 9234.0).abs() / 9234.0 < 0.05, "{}", p.mups);
    }
}
