//! The evaluated machines (paper §III, Table I).

/// Floating-point precision of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Single precision (`f32`).
    Sp,
    /// Double precision (`f64`).
    Dp,
}

impl Precision {
    /// Bytes of one scalar grid element.
    pub const fn elem_bytes(self) -> usize {
        match self {
            Precision::Sp => 4,
            Precision::Dp => 8,
        }
    }

    /// Short label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            Precision::Sp => "SP",
            Precision::Dp => "DP",
        }
    }
}

/// A machine model: the handful of numbers the paper's analysis needs.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Display name.
    pub name: &'static str,
    /// Peak DRAM bandwidth in GB/s (Table I).
    pub peak_bw_gbs: f64,
    /// Achievable (measured) bandwidth in GB/s — "usually about 20-25% off
    /// from peak" (§III-E): 22 on Core i7, 131 on GTX 285.
    pub achieved_bw_gbs: f64,
    /// Peak compute in Gops, single precision (Table I).
    pub peak_gops_sp: f64,
    /// Peak compute in Gops, double precision.
    pub peak_gops_dp: f64,
    /// Compute usable by stencil code, SP — on the GPU only a third of
    /// peak (no SFU, few madds, §III-E); equals peak on the CPU.
    pub usable_gops_sp: f64,
    /// Usable compute, DP — half of GPU peak.
    pub usable_gops_dp: f64,
    /// Fast storage budget 𝒞 for the blocking planner: half the 8 MB LLC
    /// on the CPU (§VI-A), the 16 KB shared memory on the GPU (§VI-B).
    pub fast_storage_bytes: usize,
    /// Core/SM count.
    pub cores: usize,
    /// SIMD lanes per instruction in SP (4 for SSE, 32 for a warp).
    pub simd_width_sp: usize,
}

impl Machine {
    /// Peak bytes/op Γ from Table I (peak BW / peak compute).
    pub fn big_gamma(&self, p: Precision) -> f64 {
        match p {
            Precision::Sp => self.peak_bw_gbs / self.peak_gops_sp,
            Precision::Dp => self.peak_bw_gbs / self.peak_gops_dp,
        }
    }

    /// Bytes/op against the compute actually usable by stencil kernels —
    /// 0.43 SP / 3.44 DP on the GTX 285 (§III-E).
    pub fn usable_gamma(&self, p: Precision) -> f64 {
        match p {
            Precision::Sp => self.peak_bw_gbs / self.usable_gops_sp,
            Precision::Dp => self.peak_bw_gbs / self.usable_gops_dp,
        }
    }

    /// Usable compute in Gops for the given precision.
    pub fn usable_gops(&self, p: Precision) -> f64 {
        match p {
            Precision::Sp => self.usable_gops_sp,
            Precision::Dp => self.usable_gops_dp,
        }
    }
}

/// The quad-core 3.2 GHz Intel Core i7 of Table I.
pub fn core_i7() -> Machine {
    Machine {
        name: "Core i7 (Nehalem, 4C/3.2GHz)",
        peak_bw_gbs: 30.0,
        achieved_bw_gbs: 22.0,
        peak_gops_sp: 102.0,
        peak_gops_dp: 51.0,
        usable_gops_sp: 102.0,
        usable_gops_dp: 51.0,
        fast_storage_bytes: 4 << 20, // half of the 8 MB LLC
        cores: 4,
        simd_width_sp: 4,
    }
}

/// The NVIDIA GTX 285 of Table I.
pub fn gtx285() -> Machine {
    Machine {
        name: "GTX 285 (30 SMs/1.55GHz)",
        peak_bw_gbs: 159.0,
        achieved_bw_gbs: 131.0,
        peak_gops_sp: 1116.0,
        peak_gops_dp: 93.0,
        // Stencils get a third of SP peak (no SFU, few madds) and half of
        // DP peak (§III-E).
        usable_gops_sp: 1116.0 / 3.0,
        usable_gops_dp: 93.0 / 2.0,
        fast_storage_bytes: 16 << 10, // 16 KB shared memory per SM
        cores: 30,
        simd_width_sp: 32,
    }
}

/// The Fermi-generation GPU the paper's §VIII anticipates: ~1.5x the
/// GTX 285's usable SP compute, slightly lower bandwidth, and crucially a
/// **48 KB** shared-memory configuration — the capacity jump the paper
/// predicts will make LBM SP blocking profitable ("kernels like LBM SP
/// should benefit from our blocking algorithm").
pub fn fermi() -> Machine {
    Machine {
        name: "Fermi-class GPU (C2050-like)",
        peak_bw_gbs: 144.0,
        achieved_bw_gbs: 115.0,
        peak_gops_sp: 1030.0,
        peak_gops_dp: 515.0,
        usable_gops_sp: 1030.0 / 2.0, // madd usable, no SFU inflation
        usable_gops_dp: 515.0 / 2.0,
        // Fermi adds a real cache hierarchy: 48 KB shared/L1 per SM plus a
        // 768 KB unified L2 — the L2 is the blocking-capacity jump §VIII
        // anticipates.
        fast_storage_bytes: 768 << 10,
        cores: 14,
        simd_width_sp: 32,
    }
}

/// A model of the machine the benchmarks actually run on, built from
/// caller-measured numbers (see the bench crate's calibration helper).
pub fn host_cpu(achieved_bw_gbs: f64, gops_sp: f64, llc_bytes: usize, cores: usize) -> Machine {
    Machine {
        name: "host CPU",
        peak_bw_gbs: achieved_bw_gbs * 1.25,
        achieved_bw_gbs,
        peak_gops_sp: gops_sp,
        peak_gops_dp: gops_sp / 2.0,
        usable_gops_sp: gops_sp,
        usable_gops_dp: gops_sp / 2.0,
        fast_storage_bytes: llc_bytes / 2,
        cores,
        simd_width_sp: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_bytes_per_op() {
        // Table I: Core i7 0.29 SP / 0.59 DP; GTX 285 0.14 SP / 1.7 DP.
        let cpu = core_i7();
        assert!((cpu.big_gamma(Precision::Sp) - 0.29).abs() < 0.005);
        assert!((cpu.big_gamma(Precision::Dp) - 0.59).abs() < 0.005);
        let gpu = gtx285();
        assert!((gpu.big_gamma(Precision::Sp) - 0.14).abs() < 0.005);
        assert!((gpu.big_gamma(Precision::Dp) - 1.7).abs() < 0.01);
    }

    #[test]
    fn gpu_usable_bytes_per_op_matches_section_3e() {
        // §III-E: "the actual bytes/op about 0.43 for SP and 3.44 for DP".
        let gpu = gtx285();
        assert!((gpu.usable_gamma(Precision::Sp) - 0.43).abs() < 0.01);
        assert!((gpu.usable_gamma(Precision::Dp) - 3.42).abs() < 0.03);
    }

    #[test]
    fn achieved_bandwidth_is_20_25_percent_off_peak() {
        for m in [core_i7(), gtx285()] {
            let off = 1.0 - m.achieved_bw_gbs / m.peak_bw_gbs;
            assert!((0.15..=0.30).contains(&off), "{}: {off}", m.name);
        }
    }

    #[test]
    fn precision_helpers() {
        assert_eq!(Precision::Sp.elem_bytes(), 4);
        assert_eq!(Precision::Dp.elem_bytes(), 8);
        assert_eq!(Precision::Sp.label(), "SP");
    }

    #[test]
    fn fermi_has_the_capacity_jump_section_8_expects() {
        let f = fermi();
        let g = gtx285();
        assert_eq!(f.fast_storage_bytes, 48 * g.fast_storage_bytes);
        // DP compute density rises dramatically (the §VIII DP discussion).
        assert!(f.peak_gops_dp > 5.0 * g.peak_gops_dp);
    }

    #[test]
    fn host_model_is_self_consistent() {
        let h = host_cpu(10.0, 50.0, 8 << 20, 1);
        assert!(h.achieved_bw_gbs < h.peak_bw_gbs);
        assert_eq!(h.fast_storage_bytes, 4 << 20);
    }
}
