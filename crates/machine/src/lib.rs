//! # threefive-machine — machine models and the roofline predictor
//!
//! The paper evaluates on two 2010 machines we do not have: a 4-core Intel
//! Core i7 (Nehalem) and an NVIDIA GTX 285. This crate reproduces the
//! *reported* performance landscape analytically:
//!
//! * [`Machine`] — peak/achievable bandwidth, peak SP/DP compute and fast
//!   storage for both platforms (Table I), plus a way to describe the
//!   host we actually run on;
//! * [`KernelTraffic`] — per-update bytes and ops of the paper's kernels
//!   (§IV), yielding the bytes/op ratios γ the planner consumes;
//! * [`roofline`] — `performance = min(compute limit, bandwidth limit)`
//!   with per-variant byte/op multipliers derived from the planner's κ
//!   formulas and two calibrated efficiency constants (documented in
//!   [`roofline::CPU_ALU_EFF`] etc.);
//! * [`figures`] — the row generators for Figures 4(a–c) and 5(a–b); each
//!   bench binary just prints these rows next to the measured numbers.
//!
//! The claim is *shape*, not absolute cycle accuracy: which variant wins,
//! by roughly what factor, and where blocking stops helping (small grids,
//! tiny shared memories, already-compute-bound kernels).

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod figures;
mod kernels;
mod models;
pub mod roofline;

pub use kernels::{lbm_traffic, seven_point_traffic, twenty_seven_point_traffic, KernelTraffic};
pub use models::{core_i7, fermi, gtx285, host_cpu, Machine, Precision};
pub use roofline::{predict, Bound, Prediction, Scenario};
