//! Kernel traffic/op descriptions (paper §IV).

use crate::Precision;

/// Per-update operation and DRAM-traffic characteristics of a kernel.
#[derive(Clone, Debug)]
pub struct KernelTraffic {
    /// Display name.
    pub name: &'static str,
    /// Ops per update in the paper's convention (arithmetic + memory
    /// instructions): 16 for 7-point, 58 for 27-point, 259 for LBM.
    pub ops_per_update: usize,
    /// Stencil radius (L∞).
    pub radius: usize,
    /// Scalar values read per update after ideal spatial reuse
    /// (1 for stencils, 20 for LBM including the flag).
    pub values_read: usize,
    /// Scalar values written per update (1 / 19).
    pub values_written: usize,
    /// Whether writes can use streaming stores (true for stencils; false
    /// for LBM, whose SoA neighbor writes are unaligned — §IV-B).
    pub streaming_stores: bool,
    /// Values per grid point (1 for scalar grids, 20 for D3Q19 incl. flag)
    /// — determines the planner's ℰ.
    pub values_per_point: usize,
}

impl KernelTraffic {
    /// Element size ℰ for the blocking planner.
    pub fn elem_bytes(&self, p: Precision) -> usize {
        self.values_per_point * p.elem_bytes()
    }

    /// DRAM bytes per update with ideal blocking (each value read and
    /// written once; non-streaming stores pay the write-allocate fetch).
    pub fn blocked_bytes_per_update(&self, p: Precision) -> f64 {
        let e = p.elem_bytes() as f64;
        let writes = if self.streaming_stores {
            self.values_written as f64
        } else {
            2.0 * self.values_written as f64
        };
        (self.values_read as f64 + writes) * e
    }

    /// Kernel bytes/op ratio γ (§IV): 0.5/1.0 for 7-point, 0.14/0.28 for
    /// 27-point, 0.88/1.75 for LBM.
    pub fn gamma(&self, p: Precision) -> f64 {
        self.blocked_bytes_per_update(p) / self.ops_per_update as f64
    }
}

/// The 7-point stencil (§IV-A1).
pub fn seven_point_traffic() -> KernelTraffic {
    KernelTraffic {
        name: "7-point stencil",
        ops_per_update: 16,
        radius: 1,
        values_read: 1,
        values_written: 1,
        streaming_stores: true,
        values_per_point: 1,
    }
}

/// The 27-point stencil (§IV-A2).
pub fn twenty_seven_point_traffic() -> KernelTraffic {
    KernelTraffic {
        name: "27-point stencil",
        ops_per_update: 58,
        radius: 1,
        values_read: 1,
        values_written: 1,
        streaming_stores: true,
        values_per_point: 1,
    }
}

/// D3Q19 LBM (§IV-B).
pub fn lbm_traffic() -> KernelTraffic {
    KernelTraffic {
        name: "D3Q19 LBM",
        ops_per_update: 259,
        radius: 1,
        values_read: 20, // 19 distributions + flag word
        values_written: 19,
        streaming_stores: false,
        values_per_point: 20,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_section_4() {
        let k7 = seven_point_traffic();
        assert!((k7.gamma(Precision::Sp) - 0.5).abs() < 1e-12);
        assert!((k7.gamma(Precision::Dp) - 1.0).abs() < 1e-12);
        let k27 = twenty_seven_point_traffic();
        assert!((k27.gamma(Precision::Sp) - 0.14).abs() < 0.005);
        assert!((k27.gamma(Precision::Dp) - 0.28).abs() < 0.005);
        // Our flag is one word (232 B/update) where the paper's tightest
        // packing gives 228 B; γ lands within 2% of the quoted 0.88/1.75.
        let lbm = lbm_traffic();
        assert!((lbm.gamma(Precision::Sp) - 0.88).abs() < 0.02);
        assert!((lbm.gamma(Precision::Dp) - 1.75).abs() < 0.05);
    }

    #[test]
    fn lbm_bytes_match_section_4b() {
        // §IV-B: ~228 bytes/update SP, 456 DP (76-80 read + 152 written).
        let lbm = lbm_traffic();
        assert!((lbm.blocked_bytes_per_update(Precision::Sp) - 232.0).abs() <= 4.0);
        assert!((lbm.blocked_bytes_per_update(Precision::Dp) - 464.0).abs() <= 8.0);
        // ℰ = 80 B SP / 160 B DP for the planner.
        assert_eq!(lbm.elem_bytes(Precision::Sp), 80);
        assert_eq!(lbm.elem_bytes(Precision::Dp), 160);
    }

    #[test]
    fn stencil_blocked_traffic_is_two_values() {
        let k7 = seven_point_traffic();
        assert_eq!(k7.blocked_bytes_per_update(Precision::Sp), 8.0);
        assert_eq!(k7.blocked_bytes_per_update(Precision::Dp), 16.0);
    }
}
