//! Row generators for every figure of the paper's evaluation (§VII).
//!
//! Each function returns the model-predicted bars of one figure; the bench
//! binaries print them next to numbers measured on the host. Scenario
//! construction mirrors the paper's own reasoning: blocking parameters and
//! κ come from the planner (Eqs. 1–4), traffic from §IV, efficiencies from
//! the calibration in [`crate::roofline`].

use threefive_core::planner::{dim_4d_max, kappa_35d, kappa_4d, plan_35d};

use crate::roofline::{
    predict, Bound, Prediction, Scenario, CPU_ALU_EFF, GPU_35D_BW_EFF, GPU_ALU_EFF,
    GPU_ALU_EFF_TUNED, GPU_TILE_BW_EFF,
};
use crate::{core_i7, gtx285, lbm_traffic, seven_point_traffic, Machine, Precision};

/// One predicted bar of a figure.
#[derive(Clone, Debug)]
pub struct FigRow {
    /// Bar group, e.g. "SP 256^3".
    pub group: String,
    /// Variant label, e.g. "3.5D blocking".
    pub variant: &'static str,
    /// Predicted million updates per second.
    pub mups: f64,
    /// Binding resource.
    pub bound: Bound,
}

impl FigRow {
    fn from_pred(group: String, p: Prediction) -> Self {
        Self {
            group,
            variant: p.label,
            mups: p.mups,
            bound: p.bound,
        }
    }
}

/// Grid sizes the paper evaluates.
pub const GRID_SIZES: [usize; 3] = [64, 256, 512];

/// LBM bandwidth efficiency on the CPU: the paper measures 20.5 GB/s of
/// the 22 GB/s achievable for the 39-stream LBM access pattern.
const LBM_BW_EFF: f64 = 20.5 / 22.0;

fn seven_point_plan(m: &Machine, p: Precision) -> (usize, f64) {
    let k = seven_point_traffic();
    let plan = plan_35d(
        k.gamma(p),
        m.big_gamma(p),
        m.fast_storage_bytes,
        k.elem_bytes(p),
        k.radius,
    )
    .expect("7-point is bandwidth bound on the CPU in both precisions");
    (plan.dim_t, plan.kappa)
}

/// Figure 4(b): 7-point stencil on the CPU — no-blocking, spatial-only
/// (2.5-D), and 3.5-D blocking, for SP/DP × {64³, 256³, 512³}.
pub fn fig4b_rows() -> Vec<FigRow> {
    let m = core_i7();
    let k = seven_point_traffic();
    let mut rows = Vec::new();
    for p in [Precision::Sp, Precision::Dp] {
        let (dim_t, kappa) = seven_point_plan(&m, p);
        for n in GRID_SIZES {
            let group = format!("{} {n}^3", p.label());
            // Whether both grids fit in the LLC (64³ does): then nothing
            // is bandwidth bound and blocking only adds overhead.
            let in_cache = 2 * n * n * n * p.elem_bytes() <= 2 * m.fast_storage_bytes;
            let base_bytes = if in_cache {
                0.0
            } else {
                k.blocked_bytes_per_update(p)
            };
            let variants = [
                Scenario {
                    label: "no blocking",
                    bytes_per_update: base_bytes,
                    ops_per_update: k.ops_per_update as f64,
                    alu_eff: CPU_ALU_EFF,
                    bw_eff: 1.0,
                },
                Scenario {
                    label: "spatial only (2.5D)",
                    bytes_per_update: base_bytes, // 3 slabs fit the LLC anyway (§VII-A)
                    ops_per_update: k.ops_per_update as f64,
                    alu_eff: CPU_ALU_EFF,
                    bw_eff: 1.0,
                },
                Scenario {
                    label: "3.5D blocking",
                    bytes_per_update: base_bytes * kappa / dim_t as f64,
                    ops_per_update: k.ops_per_update as f64 * kappa,
                    alu_eff: CPU_ALU_EFF,
                    bw_eff: 1.0,
                },
            ];
            for s in variants {
                rows.push(FigRow::from_pred(group.clone(), predict(&m, p, &s)));
            }
        }
    }
    rows
}

/// Figure 4(a): LBM on the CPU — no-blocking, temporal-only, 3.5-D, for
/// SP/DP × {64³, 256³, 512³}.
pub fn fig4a_rows() -> Vec<FigRow> {
    let m = core_i7();
    let k = lbm_traffic();
    let mut rows = Vec::new();
    for p in [Precision::Sp, Precision::Dp] {
        let plan = plan_35d(
            k.gamma(p).min(2.9 * m.big_gamma(p)), // paper's quoted dimT ≥ 2.9
            m.big_gamma(p),
            m.fast_storage_bytes,
            k.elem_bytes(p),
            k.radius,
        )
        .expect("LBM is bandwidth bound on the CPU");
        for n in GRID_SIZES {
            let group = format!("{} {n}^3", p.label());
            let bytes = k.blocked_bytes_per_update(p);
            // Temporal-only keeps dim_T rings of *full* XY planes; they fit
            // in cache only for small grids (§VII-B).
            let ring_bytes = plan.dim_t * 4 * n * n * k.elem_bytes(p);
            let temporal_fits = ring_bytes <= m.fast_storage_bytes;
            let temporal_gain = if temporal_fits {
                plan.dim_t as f64
            } else {
                1.0
            };
            let variants = [
                Scenario {
                    label: "no blocking",
                    bytes_per_update: bytes,
                    ops_per_update: k.ops_per_update as f64,
                    alu_eff: CPU_ALU_EFF,
                    bw_eff: LBM_BW_EFF,
                },
                Scenario {
                    label: "temporal only",
                    bytes_per_update: bytes / temporal_gain,
                    ops_per_update: k.ops_per_update as f64,
                    alu_eff: CPU_ALU_EFF,
                    bw_eff: LBM_BW_EFF,
                },
                Scenario {
                    label: "3.5D blocking",
                    bytes_per_update: bytes * plan.kappa / plan.dim_t as f64,
                    ops_per_update: k.ops_per_update as f64 * plan.kappa,
                    alu_eff: CPU_ALU_EFF,
                    bw_eff: LBM_BW_EFF,
                },
            ];
            for s in variants {
                rows.push(FigRow::from_pred(group.clone(), predict(&m, p, &s)));
            }
        }
    }
    rows
}

/// Figure 4(c): 7-point stencil on the GPU — no-blocking, spatial
/// (shared-memory) blocking, 3.5-D (register-pipelined), SP/DP.
///
/// DP notes (§VII-A): the DP unit executes madd, so the stencil's 8 flops
/// map to ~8 issue slots and spatial blocking alone is compute bound —
/// temporal blocking is skipped, exactly as the paper does.
pub fn fig4c_rows() -> Vec<FigRow> {
    let m = gtx285();
    let k = seven_point_traffic();
    let mut rows = Vec::new();
    // SP: dimT = 2, dimX = 32 (warp), κ = 1.31 (§VI-A GPU).
    let kappa_sp = kappa_35d(1, 2, 32, 32);
    for n in GRID_SIZES {
        let group = format!("SP {n}^3");
        let variants = [
            // Naive: every stencil tap reads DRAM (no cache): 7 reads + 1
            // write per update.
            Scenario {
                label: "no blocking",
                bytes_per_update: 8.0 * 4.0,
                ops_per_update: k.ops_per_update as f64,
                alu_eff: GPU_ALU_EFF,
                bw_eff: 0.8,
            },
            // Shared-memory spatial blocking: ~13% overestimation (§VII-C).
            Scenario {
                label: "spatial (shared mem)",
                bytes_per_update: 8.0 * 1.13,
                ops_per_update: k.ops_per_update as f64,
                alu_eff: GPU_ALU_EFF,
                bw_eff: GPU_TILE_BW_EFF,
            },
            // The register-pipelined 3.5-D kernel loads full warp-wide
            // coalesced rows (dimX = 32), sustaining better DRAM bursts
            // than the ghost-fragmented 2-D tiles.
            Scenario {
                label: "3.5D blocking",
                bytes_per_update: 8.0 * kappa_sp / 2.0,
                ops_per_update: k.ops_per_update as f64 * kappa_sp,
                alu_eff: GPU_ALU_EFF_TUNED,
                bw_eff: GPU_35D_BW_EFF,
            },
        ];
        for s in variants {
            rows.push(FigRow::from_pred(
                group.clone(),
                predict(&m, Precision::Sp, &s),
            ));
        }
    }
    for n in GRID_SIZES {
        let group = format!("DP {n}^3");
        // The DP unit fuses multiply-add: the 16-op update spends ~8 issue
        // slots of the single DP pipe per update.
        let dp_ops = 8.0;
        let variants = [
            Scenario {
                label: "no blocking",
                bytes_per_update: 8.0 * 8.0,
                ops_per_update: dp_ops,
                alu_eff: GPU_ALU_EFF,
                bw_eff: 0.8,
            },
            Scenario {
                label: "spatial (shared mem)",
                bytes_per_update: 16.0 * 1.13,
                ops_per_update: dp_ops,
                alu_eff: GPU_ALU_EFF,
                bw_eff: GPU_TILE_BW_EFF,
            },
            // Paper: "we have not used any temporal blocking since the
            // spatial blocking is close to compute bound" — same scenario.
            Scenario {
                label: "3.5D (== spatial, compute bound)",
                bytes_per_update: 16.0 * 1.13,
                ops_per_update: dp_ops,
                alu_eff: GPU_ALU_EFF,
                bw_eff: GPU_TILE_BW_EFF,
            },
        ];
        for s in variants {
            rows.push(FigRow::from_pred(
                group.clone(),
                predict(&m, Precision::Dp, &s),
            ));
        }
    }
    rows
}

/// Figure 5(a): LBM CPU SP optimization breakdown at 256³.
pub fn fig5a_rows() -> Vec<FigRow> {
    let m = core_i7();
    let k = lbm_traffic();
    let p = Precision::Sp;
    let bytes = k.blocked_bytes_per_update(p);
    let ops = k.ops_per_update as f64;
    let simd = m.simd_width_sp as f64;
    let kappa35 = kappa_35d(1, 3, 64 + 6, 64 + 6);
    // 4-D blocking: cubic blocks double-buffered in 𝒞; κ on loaded dims.
    let d4 = dim_4d_max(m.fast_storage_bytes, k.elem_bytes(p));
    let kappa4 = kappa_4d(1, 3, d4, d4, d4);
    let ladder = [
        Scenario {
            label: "parallel scalar, no blocking",
            bytes_per_update: bytes,
            ops_per_update: ops * simd, // scalar: no SIMD division of issue slots
            alu_eff: CPU_ALU_EFF,
            bw_eff: LBM_BW_EFF,
        },
        Scenario {
            label: "+ SIMD (4-wide SSE)",
            bytes_per_update: bytes,
            ops_per_update: ops,
            alu_eff: CPU_ALU_EFF,
            bw_eff: LBM_BW_EFF,
        },
        Scenario {
            label: "+ spatial blocking",
            bytes_per_update: bytes, // no spatial reuse in LBM (§VII-C)
            ops_per_update: ops,
            alu_eff: CPU_ALU_EFF,
            bw_eff: LBM_BW_EFF,
        },
        Scenario {
            label: "4D blocking",
            bytes_per_update: bytes * kappa4 / 3.0,
            ops_per_update: ops * kappa4,
            alu_eff: CPU_ALU_EFF,
            bw_eff: LBM_BW_EFF,
        },
        Scenario {
            label: "3.5D blocking",
            bytes_per_update: bytes * kappa35 / 3.0,
            ops_per_update: ops * kappa35,
            alu_eff: CPU_ALU_EFF,
            bw_eff: LBM_BW_EFF,
        },
        Scenario {
            label: "+ ILP (unroll, prefetch)",
            bytes_per_update: bytes * kappa35 / 3.0,
            ops_per_update: ops * kappa35,
            alu_eff: CPU_ALU_EFF * 1.09, // the paper's 171/157 ILP gain
            bw_eff: LBM_BW_EFF,
        },
    ];
    ladder
        .into_iter()
        .map(|s| FigRow::from_pred("SP 256^3".into(), predict(&m, p, &s)))
        .collect()
}

/// Figure 5(b): GPU 7-point SP optimization breakdown.
pub fn fig5b_rows() -> Vec<FigRow> {
    let m = gtx285();
    let k = seven_point_traffic();
    let p = Precision::Sp;
    let ops = k.ops_per_update as f64;
    let kappa35 = kappa_35d(1, 2, 32, 32);
    // 4-D on the GPU blocks in shared memory + registers (~80 KB): small
    // cubes, heavy overestimation (§VII-C: only 5% over spatial).
    let d4 = dim_4d_max(80 << 10, 4);
    let kappa4_bw = kappa_4d(1, 2, d4, d4, d4);
    let ladder = [
        Scenario {
            label: "naive (global memory)",
            bytes_per_update: 8.0 * 4.0,
            ops_per_update: ops,
            alu_eff: GPU_ALU_EFF,
            bw_eff: 0.8,
        },
        Scenario {
            label: "spatial (shared mem)",
            bytes_per_update: 8.0 * 1.13,
            ops_per_update: ops,
            alu_eff: GPU_ALU_EFF,
            bw_eff: GPU_TILE_BW_EFF,
        },
        Scenario {
            label: "4D blocking",
            bytes_per_update: 8.0 * kappa4_bw / 2.0,
            ops_per_update: ops * 1.4, // mean recompute of the shrinking cubes
            alu_eff: GPU_ALU_EFF,
            bw_eff: GPU_TILE_BW_EFF,
        },
        Scenario {
            label: "3.5D blocking",
            bytes_per_update: 8.0 * kappa35 / 2.0,
            ops_per_update: ops * kappa35,
            alu_eff: GPU_ALU_EFF,
            bw_eff: GPU_35D_BW_EFF,
        },
        Scenario {
            label: "+ loop unrolling",
            bytes_per_update: 8.0 * kappa35 / 2.0,
            ops_per_update: ops * kappa35,
            alu_eff: (GPU_ALU_EFF + GPU_ALU_EFF_TUNED) / 2.0,
            bw_eff: GPU_35D_BW_EFF,
        },
        Scenario {
            label: "+ multi-update per thread",
            bytes_per_update: 8.0 * kappa35 / 2.0,
            ops_per_update: ops * kappa35,
            alu_eff: GPU_ALU_EFF_TUNED,
            bw_eff: GPU_35D_BW_EFF,
        },
    ];
    ladder
        .into_iter()
        .map(|s| FigRow::from_pred("SP".into(), predict(&m, p, &s)))
        .collect()
}

/// §VII-D comparison: our predicted speedups vs the paper's reported ones.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// What is being compared.
    pub what: &'static str,
    /// Speedup predicted by the model (3.5-D vs best unblocked).
    pub model_speedup: f64,
    /// Speedup the paper reports.
    pub paper_speedup: f64,
}

/// The headline speedups of §VII-D.
pub fn comparisons() -> Vec<Comparison> {
    let pick = |rows: &[FigRow], group: &str, variant: &str| -> f64 {
        rows.iter()
            .find(|r| r.group == group && r.variant == variant)
            .map(|r| r.mups)
            .expect("row present")
    };
    let b = fig4b_rows();
    let a = fig4a_rows();
    let c = fig4c_rows();
    vec![
        Comparison {
            what: "7-point SP on CPU: 3.5D vs no blocking (512^3)",
            model_speedup: pick(&b, "SP 512^3", "3.5D blocking")
                / pick(&b, "SP 512^3", "no blocking"),
            paper_speedup: 1.5,
        },
        Comparison {
            what: "7-point DP on CPU: 3.5D vs no blocking (512^3)",
            model_speedup: pick(&b, "DP 512^3", "3.5D blocking")
                / pick(&b, "DP 512^3", "no blocking"),
            paper_speedup: 1.5,
        },
        Comparison {
            what: "LBM SP on CPU: 3.5D vs no blocking (256^3)",
            model_speedup: pick(&a, "SP 256^3", "3.5D blocking")
                / pick(&a, "SP 256^3", "no blocking"),
            paper_speedup: 2.1,
        },
        Comparison {
            what: "LBM DP on CPU: 3.5D vs no blocking (256^3)",
            model_speedup: pick(&a, "DP 256^3", "3.5D blocking")
                / pick(&a, "DP 256^3", "no blocking"),
            paper_speedup: 2.0,
        },
        Comparison {
            what: "7-point SP on GPU: 3.5D vs spatial (512^3)",
            model_speedup: pick(&c, "SP 512^3", "3.5D blocking")
                / pick(&c, "SP 512^3", "spatial (shared mem)"),
            paper_speedup: 1.8,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(rows: &[FigRow], group: &str, variant: &str) -> FigRow {
        rows.iter()
            .find(|r| r.group == group && r.variant == variant)
            .unwrap_or_else(|| panic!("missing {group}/{variant}"))
            .clone()
    }

    #[test]
    fn fig4b_shape_matches_paper() {
        let rows = fig4b_rows();
        // Large SP grids: no-blocking is bandwidth bound near 2,600 MUPS,
        // 3.5-D is compute bound near 3,900 — a ~1.4-1.5X win.
        let nb = get(&rows, "SP 512^3", "no blocking");
        let b35 = get(&rows, "SP 512^3", "3.5D blocking");
        assert_eq!(nb.bound, Bound::Bandwidth);
        assert_eq!(b35.bound, Bound::Compute);
        assert!((nb.mups - 2600.0).abs() / 2600.0 < 0.10, "{}", nb.mups);
        assert!((b35.mups - 3900.0).abs() / 3900.0 < 0.05, "{}", b35.mups);
        let speedup = b35.mups / nb.mups;
        assert!((1.3..=1.6).contains(&speedup), "{speedup}");
        // Small grid fits in cache: blocking does NOT help (slightly hurts).
        let nb64 = get(&rows, "SP 64^3", "no blocking");
        let b64 = get(&rows, "SP 64^3", "3.5D blocking");
        assert_eq!(nb64.bound, Bound::Compute);
        assert!(b64.mups <= nb64.mups);
        // DP halves everything.
        let nb_dp = get(&rows, "DP 512^3", "no blocking");
        assert!((nb_dp.mups - nb.mups / 2.0).abs() / nb.mups < 0.05);
    }

    #[test]
    fn fig4a_shape_matches_paper() {
        let rows = fig4a_rows();
        // No-blocking SP ≈ 87-90 MLUPS, bandwidth bound.
        let nb = get(&rows, "SP 256^3", "no blocking");
        assert_eq!(nb.bound, Bound::Bandwidth);
        assert!((85.0..=95.0).contains(&nb.mups), "{}", nb.mups);
        // Temporal-only helps ONLY at 64³ (rings fit in cache).
        let t64 = get(&rows, "SP 64^3", "temporal only");
        let nb64 = get(&rows, "SP 64^3", "no blocking");
        assert!(t64.mups > 1.5 * nb64.mups);
        let t256 = get(&rows, "SP 256^3", "temporal only");
        assert!(
            (t256.mups - nb.mups).abs() < 1.0,
            "{} vs {}",
            t256.mups,
            nb.mups
        );
        // 3.5-D speedup ≈ 2.1-2.3X for SP, ≈ 2X for DP.
        let b35 = get(&rows, "SP 256^3", "3.5D blocking");
        let s = b35.mups / nb.mups;
        assert!((1.9..=2.4).contains(&s), "{s}");
        let nb_dp = get(&rows, "DP 256^3", "no blocking");
        let b35_dp = get(&rows, "DP 256^3", "3.5D blocking");
        let s_dp = b35_dp.mups / nb_dp.mups;
        assert!((1.8..=2.2).contains(&s_dp), "{s_dp}");
    }

    #[test]
    fn fig4c_shape_matches_paper() {
        let rows = fig4c_rows();
        // SP: naive ~3,300; spatial ~9,234 (2.8X); 3.5-D ~17,100 (1.8X).
        let nb = get(&rows, "SP 512^3", "no blocking");
        let sp = get(&rows, "SP 512^3", "spatial (shared mem)");
        let b35 = get(&rows, "SP 512^3", "3.5D blocking");
        assert!((nb.mups - 3300.0).abs() / 3300.0 < 0.06, "{}", nb.mups);
        assert!((sp.mups - 9234.0).abs() / 9234.0 < 0.06, "{}", sp.mups);
        assert!((b35.mups - 17100.0).abs() / 17100.0 < 0.06, "{}", b35.mups);
        let spatial_gain = sp.mups / nb.mups;
        assert!((2.5..=3.1).contains(&spatial_gain), "{spatial_gain}");
        let temporal_gain = b35.mups / sp.mups;
        assert!((1.6..=2.0).contains(&temporal_gain), "{temporal_gain}");
        // DP: spatial already compute bound; no temporal benefit; ~4,600.
        let sp_dp = get(&rows, "DP 512^3", "spatial (shared mem)");
        let b35_dp = get(&rows, "DP 512^3", "3.5D (== spatial, compute bound)");
        assert_eq!(sp_dp.bound, Bound::Compute);
        assert_eq!(sp_dp.mups, b35_dp.mups);
        assert!(
            (sp_dp.mups - 4600.0).abs() / 4600.0 < 0.10,
            "{}",
            sp_dp.mups
        );
    }

    #[test]
    fn fig5a_ladder_shape() {
        let rows = fig5a_rows();
        let mups: Vec<f64> = rows.iter().map(|r| r.mups).collect();
        // Ladder: scalar < SIMD == spatial < 4D < 3.5D < +ILP.
        assert!(mups[0] < mups[1], "scalar < simd");
        assert!((mups[1] - mups[2]).abs() < 1.0, "spatial no change");
        assert!(mups[2] < mups[3], "4D beats spatial");
        assert!(mups[3] < mups[4], "3.5D beats 4D");
        assert!(mups[4] < mups[5], "ILP on top");
        // SIMD alone does not give 4X (bandwidth wall): < 2X.
        assert!(mups[1] / mups[0] < 2.0, "{}", mups[1] / mups[0]);
        // End-to-end gain ≈ paper's 171/52 ≈ 3.3X.
        let total = mups[5] / mups[0];
        assert!((2.7..=4.1).contains(&total), "{total}");
    }

    #[test]
    fn fig5b_ladder_shape() {
        let rows = fig5b_rows();
        let mups: Vec<f64> = rows.iter().map(|r| r.mups).collect();
        for w in mups.windows(2) {
            assert!(w[0] < w[1], "ladder must increase: {mups:?}");
        }
        // 4D is only a small gain over spatial (paper: ~5%).
        let gain_4d = mups[2] / mups[1];
        assert!((1.0..=1.25).contains(&gain_4d), "{gain_4d}");
        // Naive → final ≈ 5.2X (17,115 / 3,300).
        let total = mups[5] / mups[0];
        assert!((4.4..=5.8).contains(&total), "{total}");
    }

    #[test]
    fn comparisons_land_near_paper() {
        for c in comparisons() {
            let rel = (c.model_speedup - c.paper_speedup).abs() / c.paper_speedup;
            assert!(
                rel < 0.25,
                "{}: model {:.2} vs paper {:.2}",
                c.what,
                c.model_speedup,
                c.paper_speedup
            );
        }
    }
}
