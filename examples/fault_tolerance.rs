//! Demonstrates the fault-tolerant execution layer: the [`run_plan`]
//! executor ladder degrading under injected faults, the watchdog deadline,
//! and the typed-error API.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use std::time::Duration;

use threefive::core::exec::reference_sweep;
use threefive::core::faults::{self, FaultKind, FaultPlan};
use threefive::core::verify::verification_grid;
use threefive::prelude::*;

fn problem(n: usize) -> DoubleGrid<f32> {
    DoubleGrid::from_initial(verification_grid(Dim3::cube(n), 7))
}

fn main() {
    let n = 24;
    let steps = 4;
    let kernel = SevenPoint::new(0.3f32, 0.1);
    let plan = Ok(Plan35D {
        radius: 1,
        dim_t: 2,
        dim_xy: 8,
        kappa: 1.5,
        buffer_bytes: 0,
        effective_gamma: 0.1,
    });
    let opts = RunOptions {
        threads: 4,
        deadline: Some(Duration::from_secs(5)),
        ..RunOptions::default()
    };

    // Ground truth for the bit-identical guarantee.
    let mut truth = problem(n);
    reference_sweep(&kernel, &mut truth, steps);

    // 1. Healthy run: the fastest rung serves the request.
    let mut grids = problem(n);
    let report = run_plan(&kernel, &mut grids, steps, plan, &opts).unwrap();
    println!(
        "[healthy]    rung = {}, downgrades = {}, bit-identical = {}",
        report.rung,
        report.downgrades.len(),
        grids.src().as_slice() == truth.src().as_slice()
    );

    // 2. Injected worker panic mid-sweep: the parallel rung fails with a
    // typed error, the driver rolls back and downgrades one rung.
    let mut grids = problem(n);
    let report = {
        let _fault = faults::inject(FaultPlan {
            tid: 1,
            step: 2,
            kind: FaultKind::Panic,
        });
        run_plan(&kernel, &mut grids, steps, plan, &opts).unwrap()
    };
    println!(
        "[panic]      rung = {}, downgrades = {:?}, bit-identical = {}",
        report.rung,
        report
            .downgrades
            .iter()
            .map(|d| format!("{} ({})", d.from, d.reason))
            .collect::<Vec<_>>(),
        grids.src().as_slice() == truth.src().as_slice()
    );

    // 3. Injected stall: the watchdog deadline turns an infinite spin into
    // a bounded, typed failure.
    let mut grids = problem(n);
    let report = {
        let _fault = faults::inject(FaultPlan {
            tid: 2,
            step: 1,
            kind: FaultKind::Stall(Duration::from_millis(300)),
        });
        let opts = RunOptions {
            deadline: Some(Duration::from_millis(50)),
            ..opts.clone()
        };
        run_plan(&kernel, &mut grids, steps, plan, &opts).unwrap()
    };
    println!(
        "[stall]      rung = {}, downgrades = {}, bit-identical = {}",
        report.rung,
        report.downgrades.len(),
        grids.src().as_slice() == truth.src().as_slice()
    );

    // 4. Planner rejection (compute-bound kernel): both 3.5-D rungs are
    // skipped and 2.5-D spatial blocking serves the request.
    let mut grids = problem(n);
    let report = run_plan(
        &kernel,
        &mut grids,
        steps,
        Err(PlanError::AlreadyComputeBound {
            gamma: 0.2,
            big_gamma: 0.3,
        }),
        &opts,
    )
    .unwrap();
    println!(
        "[no plan]    rung = {}, downgrades = {}, bit-identical = {}",
        report.rung,
        report.downgrades.len(),
        grids.src().as_slice() == truth.src().as_slice()
    );

    // 5. Corrupt (NaN) input: rejected up front with the first offending
    // coordinate instead of walking the ladder.
    let mut bad = problem(n).src().clone();
    faults::corrupt_plane(&mut bad, 3);
    let mut grids = DoubleGrid::from_initial(bad);
    match run_plan(&kernel, &mut grids, steps, plan, &opts) {
        Err(ExecError::NonFinite { at, value }) => {
            println!("[nan input]  rejected: value {value} at {at:?}")
        }
        other => println!("[nan input]  unexpected: {other:?}"),
    }

    // 6. Typed-error API: invalid arguments are `Err`, not panics.
    let err = try_solve_steady(
        &kernel,
        &mut problem(n),
        Blocking35::new(8, 8, 2),
        None,
        1e-6,
        100,
        0, // check_every == 0
        None,
    )
    .unwrap_err();
    println!("[steady]     check_every = 0 -> {err}");
}
