//! Taylor–Green vortex decay — periodic LBM with an analytic solution.
//!
//! The 2-D Taylor–Green velocity field
//! `u = ( u0 sin(kx)cos(ky), −u0 cos(kx)sin(ky), 0 )` decays as
//! `exp(−2νk²t)` in a periodic box; integrating it with the 3.5-D-blocked
//! periodic executor and fitting the decay measures the lattice viscosity
//! against the BGK formula `ν = (1/ω − 1/2)/3`.
//!
//! ```text
//! cargo run --release --example taylor_green
//! ```

use std::f64::consts::PI;

use threefive::lbm::periodic::{lbm_periodic_sweep, periodic_lattice};
use threefive::prelude::*;

const N: usize = 32;
const OMEGA: f64 = 1.1;
const U0: f64 = 0.02;

fn main() {
    let dim = Dim3::new(N, N, 4);
    let mut lat = periodic_lattice::<f64>(dim, OMEGA);
    let k = 2.0 * PI / N as f64;
    for z in 0..dim.nz {
        for y in 0..dim.ny {
            for x in 0..dim.nx {
                let (fx, fy) = (k * x as f64, k * y as f64);
                let u = [U0 * fx.sin() * fy.cos(), -U0 * fx.cos() * fy.sin(), 0.0];
                lat.set_equilibrium(x, y, z, 1.0, u);
            }
        }
    }

    let nu_theory = lat.viscosity();
    println!("Taylor-Green vortex on {dim}, omega = {OMEGA} (nu = {nu_theory:.5}), u0 = {U0}\n");
    let e0 = lat.kinetic_energy();
    let blocking = LbmBlocking::new(16, 16, 2);
    let batch = 40usize;
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "step", "kinetic E", "E/E0", "exp(-4vk^2t)"
    );
    let mut last_ratio = 1.0f64;
    for epoch in 0..=5 {
        if epoch > 0 {
            lbm_periodic_sweep(&mut lat, batch, blocking, None);
        }
        let t = (epoch * batch) as f64;
        let e = lat.kinetic_energy();
        let ratio = e / e0;
        let analytic = (-4.0 * nu_theory * k * k * t).exp();
        println!(
            "{:>6} {:>14.6} {:>14.6} {:>12.6}",
            epoch * batch,
            e,
            ratio,
            analytic
        );
        assert!(
            ratio <= last_ratio + 1e-12,
            "energy must decay monotonically"
        );
        last_ratio = ratio;
    }

    // Fit the measured decay rate over the full run.
    let t_total = (5 * batch) as f64;
    let nu_measured = -(last_ratio).ln() / (4.0 * k * k * t_total);
    let rel = (nu_measured - nu_theory).abs() / nu_theory;
    println!(
        "\nviscosity from energy decay: {nu_measured:.5} vs BGK theory {nu_theory:.5} \
         ({:.1}% off)",
        rel * 100.0
    );
    assert!(
        rel < 0.08,
        "Taylor-Green decay must recover the BGK viscosity"
    );
    println!("analytic decay law reproduced ✓");
}
