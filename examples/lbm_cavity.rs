//! Lid-driven cavity flow — the classic LBM validation case, run with the
//! 3.5-D-blocked D3Q19 executor (paper §VI-B).
//!
//! A box of fluid whose top wall slides at constant velocity develops a
//! primary vortex. The example integrates to a quasi-steady state, prints
//! the mid-plane velocity field, and verifies circulation (positive flow
//! under the lid, return flow at the floor) plus mass conservation.
//!
//! ```text
//! cargo run --release --example lbm_cavity
//! ```

use threefive::lbm::scenarios;
use threefive::prelude::*;

const N: usize = 48;
const U_LID: f64 = 0.08;
const OMEGA: f64 = 1.2;

fn main() {
    let dim = Dim3::cube(N);
    let mut lat = scenarios::lid_driven_cavity::<f64>(dim, OMEGA, U_LID);
    let team = ThreadTeam::new(std::thread::available_parallelism().map_or(1, |c| c.get()));

    // Plan dim_T from the paper's LBM analysis and clamp the tile to N.
    let plan = plan_35d(
        lbm_traffic().gamma(Precision::Dp),
        core_i7().big_gamma(Precision::Dp),
        core_i7().fast_storage_bytes,
        lbm_traffic().elem_bytes(Precision::Dp),
        1,
    )
    .expect("LBM DP is bandwidth bound on the CPU");
    let blocking = LbmBlocking::new(plan.dim_xy.min(N), plan.dim_xy.min(N), plan.dim_t);
    println!(
        "lid-driven cavity {dim}, u_lid = {U_LID}, omega = {OMEGA}, \
         3.5D tile {}x{} dimT={}\n",
        blocking.dim_x, blocking.dim_y, blocking.dim_t
    );

    let mass0 = lat.fluid_mass();
    for epoch in 1..=5 {
        lbm35d_sweep(&mut lat, 60, blocking, Some(&team));
        let probe = lat.macroscopic(N / 2, N - 3, N / 2);
        println!(
            "after {:3} steps: u_x under lid = {:+.5}, mass drift = {:+.2e}",
            epoch * 60,
            probe.u[0],
            (lat.fluid_mass() - mass0) / mass0
        );
    }

    println!("\nmid-plane (z = N/2) velocity field (arrows: xy direction):");
    render_velocity(&lat, N / 2);

    // Physics checks.
    let under_lid = lat.macroscopic(N / 2, N - 3, N / 2);
    let near_floor = lat.macroscopic(N / 2, 2, N / 2);
    assert!(under_lid.u[0] > 1e-3, "fluid under the lid must follow it");
    assert!(
        near_floor.u[0] < 0.0,
        "return flow at the floor must oppose the lid"
    );
    // The fixed-velocity lid legitimately exchanges a little mass with the
    // fluid (it imposes distributions rather than reflecting them); the
    // bounce-back walls themselves are exact, so the drift stays tiny.
    let drift = (lat.fluid_mass() - mass0).abs() / mass0;
    assert!(
        drift < 1e-2,
        "mass drift through the lid should stay small: {drift}"
    );
    println!("\ncirculation established, lid mass exchange only {drift:.1e} ✓");
}

/// Prints a coarse arrow field of the (u_x, u_y) velocity at plane `zs`.
fn render_velocity(lat: &Lattice<f64>, zs: usize) {
    let d = lat.dim();
    let step = (d.nx / 24).max(1);
    for y in (0..d.ny).rev().step_by(step) {
        let mut line = String::new();
        for x in (0..d.nx).step_by(step) {
            if lat.flags().get(x, y, zs) != CellKind::Fluid {
                line.push('#');
                continue;
            }
            let m = lat.macroscopic(x, y, zs);
            let (ux, uy) = (m.u[0], m.u[1]);
            let mag = (ux * ux + uy * uy).sqrt();
            line.push(if mag < U_LID * 0.02 {
                '.'
            } else if ux.abs() > uy.abs() {
                if ux > 0.0 {
                    '>'
                } else {
                    '<'
                }
            } else if uy > 0.0 {
                '^'
            } else {
                'v'
            });
        }
        println!("  {line}");
    }
}
