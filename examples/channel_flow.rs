//! Channel flow past a sphere — LBM with interior bounce-back obstacles,
//! the kind of complex-geometry flow LBM is used for in practice
//! (paper §I: "capable of modeling complex flow problems").
//!
//! Fluid enters at a fixed inlet velocity, flows around a solid sphere,
//! and leaves through a fixed outlet. The example verifies that the wake
//! behind the sphere is slower than the free stream and that the blocked
//! executor matches the naive one exactly.
//!
//! ```text
//! cargo run --release --example channel_flow
//! ```

use threefive::lbm::scenarios;
use threefive::prelude::*;

fn main() {
    let dim = Dim3::new(96, 32, 32);
    let u_in = 0.05f64;
    let r_obs = 6.0;
    let mut lat = scenarios::channel_with_sphere::<f64>(dim, 1.1, u_in, r_obs);
    let mut check = scenarios::channel_with_sphere::<f64>(dim, 1.1, u_in, r_obs);

    let steps = 240usize;
    let blocking = LbmBlocking::new(32, 16, 3);
    println!("channel {dim}, sphere r = {r_obs} at x = nx/3, u_in = {u_in}; {steps} steps\n");
    lbm35d_sweep(&mut lat, steps, blocking, None);
    lbm_naive_sweep(&mut check, steps, LbmMode::Simd, None);
    for q in 0..19 {
        assert_eq!(
            lat.src().comp(q),
            check.src().comp(q),
            "3.5D and naive executors must agree bit-exactly"
        );
    }

    // Probe the centerline: upstream, beside, and behind the sphere.
    let (cy, cz) = (dim.ny / 2, dim.nz / 2);
    let sphere_x = dim.nx / 3;
    println!("centerline u_x profile (y = z = center):");
    let mut upstream = 0.0;
    let mut wake = 0.0;
    for x in (4..dim.nx - 4).step_by(4) {
        if lat.flags().get(x, cy, cz) != CellKind::Fluid {
            println!("  x = {x:3}: [sphere]");
            continue;
        }
        let u = lat.macroscopic(x, cy, cz).u[0];
        let bar = "=".repeat((u.max(0.0) / u_in * 30.0) as usize);
        println!("  x = {x:3}: {u:+.4} {bar}");
        if x == 16 {
            upstream = u;
        }
        if x == sphere_x + 10 {
            wake = u;
        }
    }
    assert!(
        upstream > 0.6 * u_in,
        "upstream flow must approach u_in: {upstream}"
    );
    assert!(
        wake < upstream,
        "wake ({wake}) must be slower than the upstream flow ({upstream})"
    );

    // Flow must divert around the sphere: faster beside it than in the wake.
    let beside = lat.macroscopic(sphere_x, cy + (r_obs as usize) + 3, cz).u[0];
    println!("\nupstream {upstream:+.4}, beside sphere {beside:+.4}, wake {wake:+.4}");
    assert!(beside > wake, "bypass flow must exceed the wake");
    println!("wake deficit and bypass acceleration observed ✓");
}
