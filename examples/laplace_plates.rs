//! Laplace boundary-value problem between heated plates, solved to steady
//! state with the 3.5-D-blocked Jacobi iteration and checked against the
//! exact analytic solution.
//!
//! The box's boundary is held at `T(y) = 100·y/(N−1)` (a linear ramp); the
//! unique harmonic interior solution is the same ramp, so the solver's
//! error is directly measurable.
//!
//! ```text
//! cargo run --release --example laplace_plates
//! ```

use threefive::core::solve::solve_steady;
use threefive::prelude::*;

const N: usize = 40;

fn main() {
    let dim = Dim3::cube(N);
    let ramp = |y: usize| y as f64 / (N - 1) as f64 * 100.0;
    let init = Grid3::from_fn(dim, |x, y, z| {
        if dim.is_interior(x, y, z, 1) {
            0.0 // cold interior
        } else {
            ramp(y) // boundary held at the ramp
        }
    });
    let exact = Grid3::from_fn(dim, |_, y, _| ramp(y));

    // Pure neighbor averaging (α = 0, β = 1/6): the Jacobi iteration for
    // the Laplace equation.
    let kernel = SevenPoint::<f64>::heat(1.0 / 6.0);
    let mut grids = DoubleGrid::from_initial(init);
    let team = ThreadTeam::new(std::thread::available_parallelism().map_or(1, |c| c.get()));

    println!("solving Laplace between plates on {dim} (3.5D-blocked Jacobi)...");
    let t0 = std::time::Instant::now();
    let out = solve_steady(
        &kernel,
        &mut grids,
        Blocking35::new(N, N, 4),
        Some(&team),
        1e-9,
        200_000,
        200,
    );
    let secs = t0.elapsed().as_secs_f64();
    let err = grids.src().max_abs_diff(&exact, &dim.full_region());
    println!(
        "converged = {}, steps = {}, residual = {:.2e}, wall = {secs:.2} s",
        out.converged, out.steps, out.residual
    );
    println!("max deviation from the analytic ramp: {err:.3e}");

    // Print the centerline profile against the exact ramp.
    println!("\ncenterline T(y) vs exact:");
    for y in (0..N).step_by(N / 10) {
        let got = grids.src().get(N / 2, y, N / 2);
        let want = ramp(y);
        let bar = "#".repeat((got / 2.5) as usize);
        println!("  y = {y:3}: {got:8.3} (exact {want:8.3}) {bar}");
    }

    assert!(out.converged, "solver must converge");
    assert!(
        err < 1e-4,
        "steady state must match the harmonic solution: {err}"
    );
    println!("\nanalytic agreement within {err:.1e} ✓");
}
