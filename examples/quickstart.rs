//! Quickstart: plan 3.5-D blocking for a 7-point stencil and compare the
//! whole executor ladder on one grid.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use threefive::prelude::*;

fn main() {
    let n = 128usize;
    let steps = 8usize;
    let dim = Dim3::cube(n);
    println!("7-point stencil, {dim} grid, {steps} time steps, f32\n");

    // 1. Plan the blocking parameters from first principles (Eqs. 1-4):
    //    kernel bytes/op γ vs machine bytes/op Γ decide dim_T; the cache
    //    budget decides the XY tile.
    let machine = core_i7();
    let traffic = seven_point_traffic();
    let plan = plan_35d(
        traffic.gamma(Precision::Sp),
        machine.big_gamma(Precision::Sp),
        machine.fast_storage_bytes,
        Precision::Sp.elem_bytes(),
        traffic.radius,
    )
    .expect("7-point SP is bandwidth bound: blocking applies");
    println!(
        "planned: dim_T = {}, tile = {}x{}, kappa = {:.3}, effective bytes/op {:.3} (machine {:.3})",
        plan.dim_t,
        plan.dim_xy,
        plan.dim_xy,
        plan.kappa,
        plan.effective_gamma,
        machine.big_gamma(Precision::Sp),
    );

    // 2. Run every executor on identical inputs; all must agree bit-exactly.
    let kernel = SevenPoint::<f32>::heat(0.125);
    let initial = Grid3::from_fn(dim, |x, y, z| ((x * 31 + y * 17 + z * 7) % 23) as f32 * 0.1);
    let tile = plan.dim_xy.min(n);
    let blocking = Blocking35::new(tile, tile, plan.dim_t);
    let team = ThreadTeam::new(std::thread::available_parallelism().map_or(1, |c| c.get()));

    let mut reference = DoubleGrid::from_initial(initial.clone());
    let t0 = Instant::now();
    reference_sweep(&kernel, &mut reference, steps);
    report("reference (scalar, no blocking)", t0, dim, steps);

    type Runner<'a> = Box<dyn Fn(&mut DoubleGrid<f32>) + 'a>;
    let runs: Vec<(&str, Runner)> = vec![
        (
            "simd, no blocking",
            Box::new(|g: &mut DoubleGrid<f32>| {
                simd_sweep(&kernel, g, steps);
            }),
        ),
        (
            "2.5D spatial blocking",
            Box::new(|g: &mut DoubleGrid<f32>| {
                blocked25d_sweep(&kernel, g, steps, tile, tile);
            }),
        ),
        (
            "4D blocking (baseline)",
            Box::new(|g: &mut DoubleGrid<f32>| {
                blocked4d_sweep(&kernel, g, steps, 32, plan.dim_t);
            }),
        ),
        (
            "3.5D blocking, serial",
            Box::new(|g: &mut DoubleGrid<f32>| {
                blocked35d_sweep(&kernel, g, steps, blocking);
            }),
        ),
        (
            "3.5D blocking, parallel",
            Box::new(|g: &mut DoubleGrid<f32>| {
                parallel35d_sweep(&kernel, g, steps, blocking, &team);
            }),
        ),
    ];
    for (name, run) in runs {
        let mut grids = DoubleGrid::from_initial(initial.clone());
        let t0 = Instant::now();
        run(&mut grids);
        report(name, t0, dim, steps);
        assert_eq!(
            grids.src().as_slice(),
            reference.src().as_slice(),
            "{name} diverged from the reference"
        );
    }
    println!("\nall executors agree bit-exactly with the reference ✓");
}

fn report(name: &str, t0: Instant, dim: Dim3, steps: usize) {
    let secs = t0.elapsed().as_secs_f64();
    let mups = (dim.len() * steps) as f64 / secs / 1e6;
    println!("{name:34} {secs:8.3} s  {mups:9.1} Mupdates/s");
}
