//! The GPU side of the paper, on the SIMT simulator: run the naive,
//! shared-memory-spatial and register-pipelined 3.5-D kernels, verify
//! functional equivalence, and print the simulated Figure 5(b)-style
//! ladder with transaction and instruction counters.
//!
//! ```text
//! cargo run --release --example gpu_pipeline
//! ```

use threefive::gpu::kernels::{
    naive_sweep, pipelined35_sweep, spatial_sweep, Pipe35Config, SevenPointGpu,
};
use threefive::gpu::timing::throughput_gtx285;
use threefive::gpu::Device;
use threefive::machine::roofline::{GPU_ALU_EFF, GPU_ALU_EFF_TUNED};
use threefive::prelude::*;

fn main() {
    let dim = Dim3::new(128, 96, 48);
    let steps = 2usize;
    let dev = Device::gtx285();
    let k = SevenPointGpu {
        alpha: 0.4,
        beta: 0.1,
    };
    let grid = Grid3::from_fn(dim, |x, y, z| ((x * 7 + y * 3 + z) % 13) as f32 * 0.2);

    // CPU ground truth.
    let mut cpu = DoubleGrid::from_initial(grid.clone());
    reference_sweep(&SevenPoint::new(k.alpha, k.beta), &mut cpu, steps);

    println!(
        "simulated GTX 285 ({} SMs, {}-wide warps, {} KB smem), {dim}, {steps} steps\n",
        dev.sms,
        dev.warp,
        dev.smem_bytes >> 10
    );
    println!(
        "{:28} {:>12} {:>12} {:>10} {:>12} {:>8}",
        "kernel", "gmem read tx", "gmem write tx", "ops/update", "sim MUPS", "bound"
    );

    let (out, s) = naive_sweep(&dev, k, &grid, steps);
    assert_eq!(out.as_slice(), cpu.src().as_slice());
    row("naive (all taps DRAM)", &s, GPU_ALU_EFF);

    let (out, s) = spatial_sweep(&dev, k, &grid, steps);
    assert_eq!(out.as_slice(), cpu.src().as_slice());
    row("spatial (smem tile)", &s, GPU_ALU_EFF);

    let (out, s) = pipelined35_sweep(&dev, k, &grid, steps, Pipe35Config::default());
    assert_eq!(out.as_slice(), cpu.src().as_slice());
    row("3.5D (register pipeline)", &s, GPU_ALU_EFF);

    let tuned = Pipe35Config {
        ty_loaded: 12,
        overhead_per_update: 1.0,
    };
    let (out, s) = pipelined35_sweep(&dev, k, &grid, steps, tuned);
    assert_eq!(out.as_slice(), cpu.src().as_slice());
    row("3.5D + unroll/multi-update", &s, GPU_ALU_EFF_TUNED);

    println!("\nall GPU kernels bit-exact with the CPU reference ✓");
}

fn row(name: &str, s: &threefive::gpu::KernelStats, alu_eff: f64) {
    let t = throughput_gtx285(s, alu_eff);
    println!(
        "{name:28} {:>12} {:>12} {:>10.1} {:>12.0} {:>8}",
        s.gmem_read_tx,
        s.gmem_write_tx,
        s.thread_ops / s.committed as f64,
        t.mups,
        if t.compute_bound() {
            "compute"
        } else {
            "memory"
        }
    );
}
