//! Mini auto-tuner: sweep tile sizes and temporal factors of the 3.5-D
//! executor on the host and compare the empirical winner with the
//! planner's analytic choice (the paper's answer to Datta et al.'s
//! auto-tuning approach — §II: a model picks the parameters instead of an
//! exhaustive search).
//!
//! ```text
//! cargo run --release --example autotune
//! ```
//!
//! The production version of this idea is the `threefive tune`
//! subcommand (DESIGN.md §13): a hill-climb from the analytical seed
//! whose verified winners persist per host in `TUNE.json`.

use std::time::Instant;

use threefive::machine::host_cpu;
use threefive::prelude::*;

fn main() {
    let n = 128usize;
    let steps = 6usize;
    let dim = Dim3::cube(n);
    let kernel = SevenPoint::<f32>::heat(0.125);
    let initial = Grid3::from_fn(dim, |x, y, z| ((x ^ y ^ z) % 11) as f32 * 0.3);

    // Rough host calibration: time one naive sweep to estimate streaming
    // bandwidth, then model the machine.
    let mut g = DoubleGrid::from_initial(initial.clone());
    let t0 = Instant::now();
    simd_sweep(&kernel, &mut g, 2);
    let naive_secs = t0.elapsed().as_secs_f64() / 2.0;
    let approx_bw = (dim.len() * 12) as f64 / naive_secs / 1e9; // ~3 x 4B per point
    let host = host_cpu(approx_bw, approx_bw / 0.29, 8 << 20, 1);
    println!("host estimate: ~{approx_bw:.1} GB/s streaming; planning against it\n");

    let planned = plan_35d(
        seven_point_traffic().gamma(Precision::Sp),
        host.big_gamma(Precision::Sp),
        host.fast_storage_bytes,
        4,
        1,
    );
    match &planned {
        Ok(p) => println!(
            "planner says: dim_T = {}, tile = {} (kappa {:.3})\n",
            p.dim_t, p.dim_xy, p.kappa
        ),
        Err(e) => println!("planner: {e}\n"),
    }

    println!(
        "{:>6} {:>6} {:>6} {:>10} {:>10}",
        "tile_x", "tile_y", "dim_T", "seconds", "MUPS"
    );
    let mut best = (0usize, 0usize, 0usize, f64::INFINITY);
    for &tile in &[32usize, 64, 128] {
        for &dim_t in &[1usize, 2, 3, 4] {
            let mut grids = DoubleGrid::from_initial(initial.clone());
            let t0 = Instant::now();
            blocked35d_sweep(
                &kernel,
                &mut grids,
                steps,
                Blocking35::new(tile, tile, dim_t),
            );
            let secs = t0.elapsed().as_secs_f64();
            let mups = (dim.len() * steps) as f64 / secs / 1e6;
            println!("{tile:>6} {tile:>6} {dim_t:>6} {secs:>10.3} {mups:>10.1}");
            if secs < best.3 {
                best = (tile, tile, dim_t, secs);
            }
        }
    }
    println!(
        "\nempirical best: tile {}x{}, dim_T = {}",
        best.0, best.1, best.2
    );
    if let Ok(p) = planned {
        println!(
            "planner chose: tile {} (clamped to grid: {}), dim_T = {}",
            p.dim_xy,
            p.dim_xy.min(n),
            p.dim_t
        );
        println!(
            "\nNote: on hosts whose working set already fits in cache the\n\
             empirical sweep may prefer dim_T = 1; the planner targets the\n\
             bandwidth-starved regime the paper evaluates."
        );
    }
}
