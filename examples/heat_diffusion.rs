//! Heat diffusion — the PDE-solver workload motivating the 7-point
//! stencil (paper §IV-A): a hot plume diffusing through a cold block with
//! fixed-temperature walls, advanced by the parallel 3.5-D executor.
//!
//! Renders an ASCII mid-plane slice as the simulation progresses and
//! checks the physics: the maximum decays monotonically and total heat is
//! bounded by the Dirichlet walls.
//!
//! ```text
//! cargo run --release --example heat_diffusion
//! ```

use threefive::prelude::*;

const N: usize = 96;
const LAMBDA: f64 = 1.0 / 6.0; // largest stable explicit step

fn main() {
    let dim = Dim3::cube(N);
    let kernel = SevenPoint::<f64>::heat(LAMBDA);

    // Cold block with two hot spherical plumes, walls held at 0.
    let initial = Grid3::from_fn(dim, |x, y, z| {
        let hot = |cx: f64, cy: f64, cz: f64, r: f64| {
            let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2) + (z as f64 - cz).powi(2))
                .sqrt();
            if d < r {
                100.0 * (1.0 - d / r)
            } else {
                0.0
            }
        };
        hot(N as f64 * 0.35, N as f64 * 0.5, N as f64 * 0.5, 10.0)
            + hot(N as f64 * 0.7, N as f64 * 0.3, N as f64 * 0.6, 7.0)
    });

    let plan = plan_35d(
        seven_point_traffic().gamma(Precision::Dp),
        core_i7().big_gamma(Precision::Dp),
        core_i7().fast_storage_bytes,
        8,
        1,
    )
    .expect("7-point DP is bandwidth bound");
    let tile = plan.dim_xy.min(N);
    let blocking = Blocking35::new(tile, tile, plan.dim_t);
    let team = ThreadTeam::new(std::thread::available_parallelism().map_or(1, |c| c.get()));

    let mut grids = DoubleGrid::from_initial(initial);
    let mut last_max = f64::INFINITY;
    println!(
        "heat diffusion on {dim}, lambda = {LAMBDA:.3}, 3.5D blocking {}x{} dimT={}\n",
        tile, tile, plan.dim_t
    );
    for epoch in 0..6 {
        if epoch > 0 {
            parallel35d_sweep(&kernel, &mut grids, 20, blocking, &team);
        }
        let g = grids.src();
        let peak = g
            .as_slice()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "after {:3} steps: peak T = {peak:7.2}, total heat = {:10.1}",
            epoch * 20,
            g.total()
        );
        render_slice(g, N / 2);
        assert!(
            peak <= last_max + 1e-9,
            "diffusion must not create new maxima (maximum principle)"
        );
        last_max = peak;
    }
    println!("maximum principle held across all epochs ✓");
}

/// Draws the `z = zs` plane, downsampled, as ASCII intensity.
fn render_slice(g: &Grid3<f64>, zs: usize) {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let d = g.dim();
    let step = (d.nx / 48).max(1);
    for y in (0..d.ny).step_by(step * 2) {
        let mut line = String::new();
        for x in (0..d.nx).step_by(step) {
            let v = g.get(x, y, zs);
            let idx = ((v / 25.0) * (SHADES.len() - 1) as f64).clamp(0.0, (SHADES.len() - 1) as f64)
                as usize;
            line.push(SHADES[idx] as char);
        }
        println!("  {line}");
    }
    println!();
}
