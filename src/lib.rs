//! # threefive — 3.5-D blocking for stencil computations
//!
//! A Rust reproduction of Nguyen, Satish, Chhugani, Kim, Dubey,
//! *"3.5-D Blocking Optimization for Stencil Computations on Modern CPUs
//! and GPUs"* (SC 2010): 2.5-D spatial blocking (block XY, stream Z)
//! combined with 1-D temporal blocking, turning bandwidth-bound stencil
//! sweeps into compute-bound ones.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`grid`] — aligned 3-D grids, geometry, SoA lattices, partitioning;
//! * [`simd`] — the lane-vector abstraction behind the SIMD kernels;
//! * [`sync`] — spin barriers and the persistent thread team;
//! * [`core`] — stencil kernels, the blocking planner (Eqs. 1–4 of the
//!   paper) and the executor ladder up to the parallel 3.5-D pipeline;
//! * [`lbm`] — D3Q19 lattice Boltzmann with the same executor ladder;
//! * [`machine`] — machine models (Table I) and the roofline predictor;
//! * [`gpu`] — the SIMT simulator running the paper's GPU kernels;
//! * [`mod@bench`] — the measurement harness (warmup + repetitions, median
//!   reporting) and the schema-versioned `BENCH_*.json` report format
//!   behind `threefive bench`.
//!
//! ## Quickstart
//!
//! ```
//! use threefive::prelude::*;
//!
//! // A 64³ heat-diffusion problem.
//! let dim = Dim3::cube(64);
//! let kernel = SevenPoint::<f32>::heat(0.1);
//! let initial = Grid3::from_fn(dim, |x, y, z| {
//!     if (x, y, z) == (32, 32, 32) { 100.0 } else { 0.0 }
//! });
//!
//! // Plan the blocking from kernel and machine byte/op ratios.
//! let machine = core_i7();
//! let traffic = seven_point_traffic();
//! let plan = plan_35d(
//!     traffic.gamma(Precision::Sp),
//!     machine.big_gamma(Precision::Sp),
//!     machine.fast_storage_bytes,
//!     4,
//!     1,
//! )
//! .unwrap();
//!
//! // Run 8 time steps with the parallel 3.5-D executor.
//! let team = ThreadTeam::new(2);
//! let mut grids = DoubleGrid::from_initial(initial);
//! let blocking = Blocking35::new(plan.dim_xy.min(64), plan.dim_xy.min(64), plan.dim_t);
//! parallel35d_sweep(&kernel, &mut grids, 8, blocking, &team);
//! assert!(grids.src().get(32, 32, 32) < 100.0); // heat spread out
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cli;
pub mod loadgen;
pub mod run;
pub mod serve_runner;
pub mod stat;

pub use run::{
    run_lbm_plan, run_lbm_plan_on_team, run_plan, run_plan_observed, run_plan_on_team, Downgrade,
    LbmDowngrade, LbmRunReport, LbmRung, RunOptions, RunReport, Rung,
};
pub use serve_runner::SolverRunner;

pub use threefive_analyze as analyze;
pub use threefive_bench as bench;
pub use threefive_cachesim as cachesim;
pub use threefive_core as core;
pub use threefive_gpu_sim as gpu;
pub use threefive_grid as grid;
pub use threefive_lbm as lbm;
pub use threefive_machine as machine;
pub use threefive_metrics as metrics;
pub use threefive_modelcheck as modelcheck;
pub use threefive_serve as serve;
pub use threefive_simd as simd;
pub use threefive_sync as sync;
pub use threefive_tune as tune;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::run::{
        run_lbm_plan, run_plan, run_plan_observed, LbmRunReport, LbmRung, RunOptions, RunReport,
        Rung,
    };
    pub use threefive_core::exec::try_parallel35d_sweep;
    pub use threefive_core::exec::{
        blocked25d_sweep, blocked35d_sweep, blocked3d_sweep, blocked4d_sweep, parallel35d_sweep,
        periodic35d_sweep, reference_sweep, reference_sweep_periodic, simd_sweep, temporal_sweep,
        tile_parallel35d_sweep, Blocking35, Schedule, ScheduleKind,
    };
    pub use threefive_core::planner::PlanSource;
    pub use threefive_core::{
        check_finite, plan_35d, plan_35d_forced, plan_35d_optimal, solve_steady, try_solve_steady,
        verify_executor, ExecError, GenericStar, Plan35D, PlanError, SevenPoint, SteadyState,
        StencilKernel, TwentySevenPoint,
    };
    pub use threefive_grid::{
        CellFlags, CellKind, Dim3, DoubleGrid, Grid3, Real, Region3, SoaGrid,
    };
    pub use threefive_lbm::{
        lbm35d_sweep, lbm_naive_sweep, lbm_temporal_sweep, try_lbm35d_sweep, Lattice, LbmBlocking,
        LbmError, LbmMode,
    };
    pub use threefive_machine::{
        core_i7, gtx285, lbm_traffic, seven_point_traffic, Machine, Precision,
    };
    pub use threefive_sync::{
        Instrument, Observer, SpinBarrier, SyncError, ThreadTeam, TraceEventKind, TraceSnapshot,
        Tracer,
    };
}
