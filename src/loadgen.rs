//! Multi-tenant load generator for the solver service.
//!
//! Drives a running `threefive serve` daemon with N concurrent tenant
//! connections, measures client-observed latency and throughput at
//! saturation, and emits a schema-versioned
//! [`ServiceReport`]. Optional
//! `--verify` recomputes the scalar-reference checksum for every spec
//! locally and compares it against the daemon's answer — bit-identity
//! across process boundaries. Optional `--chaos` arms the daemon's fault
//! injection mid-load through the protocol, so the run also exercises
//! quarantine, healing and per-job fault isolation under pressure.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use threefive_bench::json::Json;
use threefive_bench::report::HostInfo;
use threefive_bench::service::{LatencyMs, ServiceReport, ServiceTotals, SERVICE_SCHEMA_VERSION};
use threefive_metrics::{HistSnapshot, HistSpec};
use threefive_serve::{
    ChaosCmd, JobSpec, LbmScenario, Response, ServiceClient, Workload, JOB_LATENCY_METRIC,
    PRIORITIES,
};

use crate::serve_runner::reference_checksum;

/// Which workloads the generated jobs use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadMix {
    /// Stencil heat diffusion only.
    Stencil,
    /// LBM only (rotating through the three scenarios).
    Lbm,
    /// Alternating stencil and LBM jobs.
    Mix,
}

impl WorkloadMix {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "stencil" => Some(WorkloadMix::Stencil),
            "lbm" => Some(WorkloadMix::Lbm),
            "mix" => Some(WorkloadMix::Mix),
            _ => None,
        }
    }
}

/// One load-generation run's parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:7435`.
    pub addr: String,
    /// Concurrent tenant connections.
    pub tenants: usize,
    /// Total jobs to offer across all tenants.
    pub jobs: usize,
    /// Cubic grid edge per job.
    pub n: usize,
    /// Time steps per job.
    pub steps: usize,
    /// Temporal blocking factor.
    pub dim_t: usize,
    /// XY tile edge.
    pub tile: usize,
    /// Per-job end-to-end deadline.
    pub deadline: Duration,
    /// Workload selection.
    pub mix: WorkloadMix,
    /// Arm fault injection inside the daemon mid-run.
    pub chaos: bool,
    /// Recompute reference checksums locally and compare.
    pub verify: bool,
    /// Cross-check client-observed latency percentiles against the
    /// daemon's server-side latency histogram (scraped over `stats`
    /// before and after the run), failing the campaign if they disagree
    /// beyond bucket resolution.
    pub verify_latency: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7435".into(),
            tenants: 8,
            jobs: 64,
            n: 16,
            steps: 4,
            dim_t: 2,
            tile: 16,
            deadline: Duration::from_secs(10),
            mix: WorkloadMix::Mix,
            chaos: false,
            verify: false,
            verify_latency: false,
        }
    }
}

/// Workload of the `k`-th job: round-robin over the mix so stencil and
/// every LBM scenario appear under load, deterministically.
fn workload_for(mix: WorkloadMix, k: usize) -> Workload {
    const LBM: [LbmScenario; 3] = [
        LbmScenario::ClosedBox,
        LbmScenario::Cavity,
        LbmScenario::Channel,
    ];
    match mix {
        WorkloadMix::Stencil => Workload::Stencil,
        WorkloadMix::Lbm => Workload::Lbm(LBM[k % LBM.len()]),
        WorkloadMix::Mix => {
            if k.is_multiple_of(2) {
                Workload::Stencil
            } else {
                Workload::Lbm(LBM[(k / 2) % LBM.len()])
            }
        }
    }
}

fn spec_for(cfg: &LoadgenConfig, k: usize) -> JobSpec {
    JobSpec {
        workload: workload_for(cfg.mix, k),
        n: cfg.n,
        steps: cfg.steps,
        dim_t: cfg.dim_t,
        tile: cfg.tile,
        deadline: cfg.deadline,
        priority: (k % PRIORITIES) as u8,
    }
}

/// Per-tenant outcome tallies, merged after join.
#[derive(Default)]
struct Tally {
    completed: u64,
    rejected: u64,
    failed: u64,
    timed_out: u64,
    verified: u64,
    mismatched: u64,
    latencies_ms: Vec<f64>,
    wire_errors: Vec<String>,
}

/// Reference checksums are expensive (a scalar sweep per distinct
/// workload); tenants share one lazily-filled cache. Keyed by workload
/// only — every job in a run shares `n`/`steps`.
struct RefCache {
    inner: Mutex<HashMap<String, u64>>,
}

impl RefCache {
    fn lookup(&self, spec: &JobSpec) -> u64 {
        let key = spec.workload.to_string();
        // A poisoned mutex only means some tenant thread panicked after
        // touching the cache; the map of already-computed checksums is
        // still valid (worst case: a racing insert is lost and the value
        // is recomputed), so recover the guard instead of cascading the
        // panic into every remaining tenant.
        if let Some(&v) = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            return v;
        }
        // Compute outside the lock: a cold miss costs a reference sweep
        // and must not serialize every other tenant behind it. Two
        // tenants may race the same key; both compute the same value.
        let v = reference_checksum(spec);
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, v);
        v
    }
}

fn tenant_loop(
    cfg: &LoadgenConfig,
    next_job: &AtomicUsize,
    refs: Option<&RefCache>,
) -> Result<Tally, String> {
    let mut client =
        ServiceClient::connect(&cfg.addr).map_err(|e| format!("connect to {}: {e}", cfg.addr))?;
    // A tenant blocks for queue wait + execution; the daemon answers
    // within the job's deadline (typed expiry) unless it is wedged —
    // which is exactly what the generous slack here would expose.
    client
        .set_timeout(Some(cfg.deadline * 4 + Duration::from_secs(10)))
        .map_err(|e| format!("set timeout: {e}"))?;

    let mut tally = Tally::default();
    loop {
        let k = next_job.fetch_add(1, Ordering::Relaxed);
        if k >= cfg.jobs {
            break;
        }
        let spec = spec_for(cfg, k);
        let t0 = Instant::now();
        match client.solve(&spec) {
            Ok(Response::Done { completed, .. }) => {
                tally.completed += 1;
                tally.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                if let Some(refs) = refs {
                    if completed.checksum == refs.lookup(&spec) {
                        tally.verified += 1;
                    } else {
                        tally.mismatched += 1;
                    }
                }
            }
            Ok(Response::Rejected(_)) => tally.rejected += 1,
            Ok(Response::Failed { failure, .. }) => match failure {
                threefive_serve::JobFailure::DeadlineExpired { .. }
                | threefive_serve::JobFailure::PoolExhausted => tally.timed_out += 1,
                threefive_serve::JobFailure::Failed { .. } => tally.failed += 1,
            },
            Ok(other) => {
                tally
                    .wire_errors
                    .push(format!("job {k}: unexpected response {other:?}"));
            }
            Err(e) => {
                tally.wire_errors.push(format!("job {k}: {e}"));
            }
        }
    }
    Ok(tally)
}

/// Background chaos driver: alternates panic and stall fault plans inside
/// the daemon while tenants are running, then disarms. Each `chaos`
/// command replaces the previous plan, so faults keep re-arming as jobs
/// consume them.
fn chaos_loop(addr: &str, done: &AtomicBool) -> Result<u64, String> {
    let mut client =
        ServiceClient::connect(addr).map_err(|e| format!("chaos connect to {addr}: {e}"))?;
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("chaos set timeout: {e}"))?;
    let mut armed = 0u64;
    let mut flip = false;
    while !done.load(Ordering::Relaxed) {
        let cmd = if flip {
            ChaosCmd::Stall {
                tid: 1,
                step: 2,
                stall: Duration::from_millis(30),
            }
        } else {
            ChaosCmd::Panic { tid: 0, step: 1 }
        };
        flip = !flip;
        client.chaos(&cmd).map_err(|e| format!("arm chaos: {e}"))?;
        armed += 1;
        thread::sleep(Duration::from_millis(40));
    }
    client
        .chaos(&ChaosCmd::Off)
        .map_err(|e| format!("disarm chaos: {e}"))?;
    Ok(armed)
}

/// Scrapes the daemon's server-side end-to-end latency histogram out of
/// one `stats` response.
fn scrape_latency_hist(addr: &str) -> Result<HistSnapshot, String> {
    let mut client =
        ServiceClient::connect(addr).map_err(|e| format!("stats connect to {addr}: {e}"))?;
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("stats set timeout: {e}"))?;
    let doc = client.stats().map_err(|e| format!("stats scrape: {e}"))?;
    latency_hist_from_stats(&doc)
}

/// Rebuilds a [`HistSnapshot`] from the `stats` response's nested
/// `metrics` object (per-bucket counts are non-cumulative there for
/// exactly this diff-two-scrapes use).
fn latency_hist_from_stats(doc: &Json) -> Result<HistSnapshot, String> {
    let metric = doc
        .get("metrics")
        .and_then(|m| m.get(JOB_LATENCY_METRIC))
        .ok_or_else(|| {
            format!("stats response has no '{JOB_LATENCY_METRIC}' histogram (old daemon?)")
        })?;
    let buckets = match metric.get("buckets") {
        Some(Json::Arr(items)) => items,
        _ => return Err(format!("'{JOB_LATENCY_METRIC}' has no bucket array")),
    };
    let spec = HistSpec::LATENCY;
    if buckets.len() != spec.buckets {
        return Err(format!(
            "'{JOB_LATENCY_METRIC}' has {} buckets, expected {} — daemon/client spec mismatch",
            buckets.len(),
            spec.buckets
        ));
    }
    let mut snap = HistSnapshot::empty(spec);
    for (i, b) in buckets.iter().enumerate() {
        snap.counts[i] = b.get("count").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    }
    snap.sum_ns = metric.get("sum_ns").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    Ok(snap)
}

/// Cross-checks client-observed percentiles against the server-side
/// histogram of the same run. The server buckets are log-2, so agreement
/// is defined as landing within ±1 bucket: the client adds wire and
/// framing overhead on top of the admission→response time the server
/// measures, which must never amount to a >2x disagreement.
fn check_latency_agreement(client: &LatencyMs, server: &HistSnapshot) -> Result<(), String> {
    if server.total() == 0 {
        return Err(
            "latency verification: server-side histogram recorded no jobs for this run".into(),
        );
    }
    let spec = server.spec;
    for (q, client_ms) in [(0.5, client.p50), (0.9, client.p90), (0.99, client.p99)] {
        let client_bucket = spec.bucket_index((client_ms * 1e6).max(0.0) as u64);
        let server_bucket = server
            .quantile_bucket(q)
            .ok_or("latency verification: empty server histogram")?;
        if client_bucket.abs_diff(server_bucket) > 1 {
            let server_ms = server
                .quantile_ns(q)
                .map(|ns| ns as f64 / 1e6)
                .unwrap_or(f64::INFINITY);
            return Err(format!(
                "latency verification FAILED at p{:.0}: client observed {client_ms:.2} ms \
                 (bucket {client_bucket}) but the server-side histogram says ~{server_ms:.2} ms \
                 (bucket {server_bucket}) over {} dispatched job(s)",
                q * 100.0,
                server.total()
            ));
        }
    }
    Ok(())
}

/// Runs one load-generation campaign against a live daemon and assembles
/// the validated report. `Err` means the *measurement* broke (connection
/// refused, wire error, response to nobody) — job-level failures and
/// rejections are data, not errors.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<ServiceReport, String> {
    if cfg.tenants == 0 || cfg.jobs == 0 {
        return Err("tenants and jobs must be positive".into());
    }
    // Latency cross-checking diffs the daemon's histogram across the
    // run, so it isolates this campaign's jobs even on a warm daemon.
    let hist_before = cfg
        .verify_latency
        .then(|| scrape_latency_hist(&cfg.addr))
        .transpose()?;
    let next_job = Arc::new(AtomicUsize::new(0));
    let refs = cfg.verify.then(|| {
        Arc::new(RefCache {
            inner: Mutex::new(HashMap::new()),
        })
    });
    let done = Arc::new(AtomicBool::new(false));

    let t0 = Instant::now();
    let chaos_handle = cfg.chaos.then(|| {
        let addr = cfg.addr.clone();
        let done = Arc::clone(&done);
        thread::spawn(move || chaos_loop(&addr, &done))
    });

    let mut handles = Vec::with_capacity(cfg.tenants);
    for _ in 0..cfg.tenants {
        let cfg = cfg.clone();
        let next_job = Arc::clone(&next_job);
        let refs = refs.clone();
        handles.push(thread::spawn(move || {
            tenant_loop(&cfg, &next_job, refs.as_deref())
        }));
    }

    let mut merged = Tally::default();
    for h in handles {
        let t = h.join().map_err(|_| "tenant thread panicked")??;
        merged.completed += t.completed;
        merged.rejected += t.rejected;
        merged.failed += t.failed;
        merged.timed_out += t.timed_out;
        merged.verified += t.verified;
        merged.mismatched += t.mismatched;
        merged.latencies_ms.extend(t.latencies_ms);
        merged.wire_errors.extend(t.wire_errors);
    }
    done.store(true, Ordering::Relaxed);
    if let Some(h) = chaos_handle {
        h.join().map_err(|_| "chaos thread panicked")??;
    }
    let wall_secs = t0.elapsed().as_secs_f64();

    if !merged.wire_errors.is_empty() {
        return Err(format!(
            "{} request(s) got no typed answer: {}",
            merged.wire_errors.len(),
            merged.wire_errors.join("; ")
        ));
    }

    let accepted = merged.completed + merged.failed + merged.timed_out;
    let offered = accepted + merged.rejected;
    debug_assert_eq!(offered, cfg.jobs as u64, "every job answered exactly once");
    let latency_ms = LatencyMs::from_samples(&mut merged.latencies_ms);
    if let Some(before) = hist_before {
        let after = scrape_latency_hist(&cfg.addr)?;
        let run_hist = after.diff_since(&before);
        check_latency_agreement(&latency_ms, &run_hist)?;
        eprintln!(
            "threefive loadgen: latency verification passed — client p50/p90/p99 within one \
             histogram bucket of the server's ({} dispatched job(s))",
            run_hist.total()
        );
    }
    Ok(ServiceReport {
        schema_version: SERVICE_SCHEMA_VERSION,
        host: HostInfo::detect(),
        tenants: cfg.tenants,
        chaos: cfg.chaos,
        totals: ServiceTotals {
            offered,
            accepted,
            completed: merged.completed,
            rejected: merged.rejected,
            failed: merged.failed,
            timed_out: merged.timed_out,
            verified: merged.verified,
            mismatched: merged.mismatched,
        },
        latency_ms,
        wall_secs,
        completed_per_sec: merged.completed as f64 / wall_secs.max(1e-9),
        offered_per_sec: offered as f64 / wall_secs.max(1e-9),
        rejection_rate: if offered == 0 {
            0.0
        } else {
            merged.rejected as f64 / offered as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_round_robin_covers_all_scenarios() {
        let kinds: Vec<Workload> = (0..8).map(|k| workload_for(WorkloadMix::Mix, k)).collect();
        assert!(kinds.contains(&Workload::Stencil));
        for sc in [
            LbmScenario::ClosedBox,
            LbmScenario::Cavity,
            LbmScenario::Channel,
        ] {
            assert!(kinds.contains(&Workload::Lbm(sc)), "{}", sc.name());
        }
        assert!((0..6)
            .map(|k| workload_for(WorkloadMix::Lbm, k))
            .all(|w| matches!(w, Workload::Lbm(_))));
        assert!((0..6)
            .map(|k| workload_for(WorkloadMix::Stencil, k))
            .all(|w| w == Workload::Stencil));
    }

    #[test]
    fn specs_rotate_priorities_within_range() {
        let cfg = LoadgenConfig::default();
        for k in 0..10 {
            let s = spec_for(&cfg, k);
            assert!(usize::from(s.priority) < PRIORITIES);
        }
    }

    #[test]
    fn loadgen_against_no_daemon_is_a_measurement_error() {
        // Port 1 is never a solver daemon; the error must name the addr.
        let cfg = LoadgenConfig {
            addr: "127.0.0.1:1".into(),
            tenants: 1,
            jobs: 1,
            ..LoadgenConfig::default()
        };
        let err = run_loadgen(&cfg).unwrap_err();
        assert!(err.contains("127.0.0.1:1"), "{err}");
    }

    #[test]
    fn latency_agreement_tolerates_one_bucket_and_no_more() {
        let spec = HistSpec::LATENCY;
        let mut server = HistSnapshot::empty(spec);
        server.counts[spec.bucket_index(2_000_000)] = 10; // ~2 ms
        let agree = LatencyMs {
            p50: 2.0,
            p90: 2.0,
            p99: 2.0,
            max: 2.0,
        };
        check_latency_agreement(&agree, &server).unwrap();
        let disagree = LatencyMs {
            p50: 200.0,
            p90: 200.0,
            p99: 200.0,
            max: 200.0,
        };
        let err = check_latency_agreement(&disagree, &server).unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
        let empty = HistSnapshot::empty(spec);
        assert!(check_latency_agreement(&agree, &empty).is_err());
    }

    #[test]
    fn latency_hist_round_trips_through_the_stats_document() {
        use threefive_serve::ServeMetrics;
        let m = ServeMetrics::new();
        m.on_latency(Duration::from_millis(3));
        m.on_latency(Duration::from_millis(5));
        let doc = Json::Obj(vec![(
            "metrics".into(),
            threefive_serve::metrics::snapshot_to_json(&m.registry.snapshot()),
        )]);
        let snap = latency_hist_from_stats(&doc).unwrap();
        assert_eq!(snap.total(), 2);
        assert_eq!(snap.spec, HistSpec::LATENCY);
        // A document without the histogram is a typed error, not a panic.
        assert!(latency_hist_from_stats(&Json::Obj(vec![])).is_err());
    }

    #[test]
    fn zero_tenants_rejected() {
        let cfg = LoadgenConfig {
            tenants: 0,
            ..LoadgenConfig::default()
        };
        assert!(run_loadgen(&cfg).is_err());
    }
}
