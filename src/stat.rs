//! `threefive stat` — scrape a running daemon and render a dashboard.
//!
//! One-shot by default; `--watch SECS` redraws in place. The data comes
//! from the daemon's `stats` protocol command (flat counters + the
//! registry's JSON snapshot) and the `events` command (structured event
//! ring). `--check` additionally fetches the Prometheus exposition and
//! runs the in-tree format validator plus the accounting identities,
//! exiting nonzero on any violation — the machine-checkable half of the
//! observability contract, used by CI's metrics smoke job.

use std::time::Duration;

use threefive_bench::json::Json;
use threefive_metrics::{validate_exposition, Level};
use threefive_serve::ServiceClient;

/// What one `threefive stat` invocation should do.
#[derive(Clone, Debug)]
pub struct StatOptions {
    /// Daemon protocol address.
    pub addr: String,
    /// How many recent events to show (0 hides the events section).
    pub events: usize,
    /// Lowest event level shown.
    pub level: Level,
    /// Validate the exposition and the accounting identities; `Err` on
    /// any violation.
    pub check: bool,
    /// Print events as raw JSONL only (for log shipping / CI artifacts)
    /// instead of the dashboard.
    pub jsonl: bool,
}

impl Default for StatOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7435".into(),
            events: 8,
            level: Level::Info,
            check: false,
            jsonl: false,
        }
    }
}

fn connect(addr: &str) -> Result<ServiceClient, String> {
    let mut client = ServiceClient::connect(addr).map_err(|e| format!("connect to {addr}: {e}"))?;
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set timeout: {e}"))?;
    Ok(client)
}

/// Runs one scrape and returns the rendered output (the caller prints
/// it; `--watch` calls this in a loop).
pub fn run_once(opts: &StatOptions) -> Result<String, String> {
    let mut client = connect(&opts.addr)?;
    if opts.jsonl {
        let events = client
            .events(opts.events.max(1), opts.level)
            .map_err(|e| format!("events: {e}"))?;
        return Ok(events.iter().map(compact).collect::<Vec<_>>().join("\n"));
    }
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    let events = if opts.events > 0 {
        client
            .events(opts.events, opts.level)
            .map_err(|e| format!("events: {e}"))?
    } else {
        Vec::new()
    };
    let mut out = render_dashboard(&opts.addr, &stats, &events);
    if opts.check {
        let expo = client
            .metrics_exposition()
            .map_err(|e| format!("metrics: {e}"))?;
        validate_exposition(&expo).map_err(|e| format!("exposition INVALID: {e}"))?;
        if stats.get("identities_ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "accounting identities VIOLATED: {}",
                stats
                    .get("identities_err")
                    .and_then(Json::as_str)
                    .unwrap_or("(daemon gave no detail)")
            ));
        }
        let lines = expo.lines().count();
        out.push_str(&format!(
            "\ncheck     exposition valid ({lines} lines); accounting identities hold\n"
        ));
    }
    Ok(out)
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// A histogram summary line from the registry's JSON snapshot.
fn hist_line(metrics: &Json, name: &str) -> String {
    let Some(h) = metrics.get(name) else {
        return "n/a".into();
    };
    let count = num(h, "count");
    if count == 0.0 {
        return "no samples".into();
    }
    let q = |key: &str| match h.get(key).and_then(Json::as_f64) {
        Some(ns) => fmt_ns(ns),
        None => ">max".into(),
    };
    format!(
        "p50 {} | p90 {} | p99 {} (n={count})",
        q("p50_ns"),
        q("p90_ns"),
        q("p99_ns")
    )
}

/// Renders nanoseconds with a readable unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// A counter-family line: `label: count` pairs in first-use order.
fn family_line(metrics: &Json, name: &str) -> String {
    match metrics.get(name) {
        Some(Json::Obj(pairs)) if !pairs.is_empty() => pairs
            .iter()
            .map(|(label, v)| format!("{label}: {}", v.as_f64().unwrap_or(0.0)))
            .collect::<Vec<_>>()
            .join(" | "),
        _ => "none yet".into(),
    }
}

/// One-line rendering of a JSON document (events ship as JSONL).
fn compact(doc: &Json) -> String {
    doc.to_string()
        .lines()
        .map(str::trim)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders the full dashboard from one `stats` response and an event
/// tail. Pure function of its inputs, so tests can drive it without a
/// live daemon.
pub fn render_dashboard(addr: &str, stats: &Json, events: &[Json]) -> String {
    let metrics = stats.get("metrics").cloned().unwrap_or(Json::Obj(vec![]));
    let draining = stats
        .get("draining")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let identities_ok = stats.get("identities_ok").and_then(Json::as_bool);
    let mut out = String::new();
    out.push_str(&format!(
        "threefive daemon @ {addr}{}\n",
        if draining { " — DRAINING" } else { "" }
    ));
    out.push_str(&format!(
        "jobs      offered {} | accepted {} | rejected {} | completed {} | failed {} | \
         timed out {} | in flight {}\n",
        num(stats, "offered"),
        num(stats, "accepted"),
        num(stats, "rejected"),
        num(stats, "completed"),
        num(stats, "failed"),
        num(stats, "timed_out"),
        num(stats, "in_flight"),
    ));
    out.push_str(&format!(
        "          accounting identities: {}\n",
        match identities_ok {
            Some(true) => "OK".to_string(),
            Some(false) => format!(
                "VIOLATED — {}",
                stats
                    .get("identities_err")
                    .and_then(Json::as_str)
                    .unwrap_or("(no detail)")
            ),
            None => "not reported (old daemon?)".to_string(),
        }
    ));
    out.push_str(&format!(
        "queue     {} of {} queued\n",
        num(stats, "queue_len"),
        num(stats, "queue_capacity"),
    ));
    out.push_str(&format!(
        "pool      idle {} | leased {} | quarantined {} of {} team(s) | isolations {} | heals {}\n",
        num(stats, "pool_idle"),
        num(stats, "pool_leased"),
        num(stats, "pool_quarantined"),
        num(stats, "pool_capacity"),
        num(stats, "pool_isolations"),
        num(stats, "pool_heals"),
    ));
    out.push_str(&format!(
        "latency   queue-wait {}\n          exec       {}\n          end-to-end {}\n",
        hist_line(&metrics, "threefive_job_queue_wait_seconds"),
        hist_line(&metrics, "threefive_job_exec_seconds"),
        hist_line(&metrics, "threefive_job_latency_seconds"),
    ));
    out.push_str(&format!(
        "rungs     {} | downgrades {}\n",
        family_line(&metrics, "threefive_jobs_by_rung_total"),
        num(&metrics, "threefive_job_downgrades_total"),
    ));
    out.push_str(&format!(
        "kernels   {}\n",
        family_line(&metrics, "threefive_jobs_by_kernel_total")
    ));
    out.push_str(&format!(
        "tenants   {}\n",
        family_line(&metrics, "threefive_jobs_by_tenant_total")
    ));
    let compute_ns = num(&metrics, "threefive_engine_compute_ns_total");
    let barrier_ns = num(&metrics, "threefive_engine_barrier_ns_total");
    let share = if compute_ns + barrier_ns > 0.0 {
        barrier_ns / (compute_ns + barrier_ns) * 100.0
    } else {
        0.0
    };
    out.push_str(&format!(
        "engine    sweeps {} | compute {} | barrier {} ({share:.1}% wait) | barrier-wait {}\n",
        num(&metrics, "threefive_engine_sweeps_total"),
        fmt_ns(compute_ns),
        fmt_ns(barrier_ns),
        hist_line(&metrics, "threefive_engine_barrier_wait_seconds"),
    ));
    out.push_str(&format!(
        "tune      db entries {} | hits {} | misses {}\n",
        num(&metrics, "threefive_tune_db_entries"),
        num(&metrics, "threefive_tune_db_hits_total"),
        num(&metrics, "threefive_tune_db_misses_total"),
    ));
    out.push_str(&format!(
        "events    {}\n",
        family_line(&metrics, "threefive_events_total")
    ));
    for ev in events {
        out.push_str(&format!("  {}\n", compact(ev)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use threefive_serve::metrics::snapshot_to_json;
    use threefive_serve::{ServeMetrics, ServiceStats};

    /// A stats document like the daemon's, driven from real types.
    fn stats_doc(m: &ServeMetrics, stats: &ServiceStats) -> Json {
        let counts = stats.snapshot();
        let mut fields = counts.to_json();
        fields.push((
            "identities_ok".into(),
            Json::Bool(counts.check_identities().is_ok()),
        ));
        fields.push(("draining".into(), Json::Bool(false)));
        fields.push(("metrics".into(), snapshot_to_json(&m.registry.snapshot())));
        Json::Obj(fields)
    }

    #[test]
    fn dashboard_renders_live_sections() {
        let m = ServeMetrics::new();
        let stats = Arc::new(ServiceStats::default());
        stats.offer(|| Ok(())).unwrap();
        stats.job_completed();
        m.on_queue_wait(Duration::from_micros(120));
        m.on_completed("parallel-3.5d", 0, 2.0);
        m.on_resolved("stencil", 1);
        let text = render_dashboard("127.0.0.1:7435", &stats_doc(&m, &stats), &[]);
        assert!(text.contains("accounting identities: OK"), "{text}");
        assert!(text.contains("parallel-3.5d: 1"), "{text}");
        assert!(text.contains("stencil: 1"), "{text}");
        assert!(text.contains("queue-wait p50"), "{text}");
        assert!(!text.contains("VIOLATED"), "{text}");
    }

    #[test]
    fn dashboard_flags_identity_violations() {
        let doc = Json::Obj(vec![
            ("offered".into(), Json::num(2.0)),
            ("accepted".into(), Json::num(1.0)),
            ("identities_ok".into(), Json::Bool(false)),
            ("identities_err".into(), Json::str("offered (2) != ...")),
        ]);
        let text = render_dashboard("x", &doc, &[]);
        assert!(text.contains("VIOLATED"), "{text}");
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(512.0), "512ns");
        assert_eq!(fmt_ns(80_000.0), "80.0us");
        assert_eq!(fmt_ns(3_200_000.0), "3.2ms");
        assert_eq!(fmt_ns(2.5e9), "2.50s");
    }

    #[test]
    fn stat_against_no_daemon_is_a_typed_error() {
        let opts = StatOptions {
            addr: "127.0.0.1:1".into(),
            ..StatOptions::default()
        };
        let err = run_once(&opts).unwrap_err();
        assert!(err.contains("127.0.0.1:1"), "{err}");
    }
}
