//! `threefive` — command-line driver for the 3.5-D blocking library.
//!
//! ```text
//! threefive plan  --kernel 7pt --machine i7 --precision sp
//! threefive run   --variant 35d --n 128 --steps 8 --threads 4
//! threefive lbm   --scenario cavity --variant 35d --n 48 --steps 120
//! threefive bench --n 64 --steps 4 --out .
//! threefive bench --validate BENCH_stencil.json
//! threefive gpu   --n 96 --steps 2
//! threefive info
//! ```
//!
//! All user input is validated: unparseable option values and invalid
//! blocking parameters (e.g. `--dimt 0`) are reported as errors with a
//! nonzero exit status, never silently defaulted or panicked on.

use std::collections::HashMap;
use std::fmt;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use threefive::analyze::findings::AnalyzeReport;
use threefive::bench::counters::{lbm_telemetry, stencil_telemetry, Telemetry};
use threefive::bench::perfetto::{trace_to_chrome_json, validate_trace_str};
use threefive::bench::probe::ProbeWorkload;
use threefive::bench::report::{BenchEntry, BenchReport, HostInfo};
use threefive::bench::service::ServiceReport;
use threefive::bench::{
    measure_lbm_scheduled, measure_seven_point_scheduled, BenchConfig, Measurement, LBM_VARIANTS,
    STENCIL_VARIANTS,
};
use threefive::cli::{self, CliError};
use threefive::gpu::kernels::{
    naive_sweep as gpu_naive, pipelined35_sweep, spatial_sweep, Pipe35Config, SevenPointGpu,
};
use threefive::gpu::timing::throughput_gtx285;
use threefive::gpu::Device;
use threefive::lbm::{scenarios, LbmError};
use threefive::loadgen::{run_loadgen, LoadgenConfig, WorkloadMix};
use threefive::machine::fermi;
use threefive::machine::roofline::{GPU_ALU_EFF, GPU_ALU_EFF_TUNED};
use threefive::machine::twenty_seven_point_traffic;
use threefive::metrics::Level;
use threefive::prelude::*;
use threefive::serve::{signal, AdmissionLimits, ServeMetrics, Server, ServerConfig};
use threefive::serve_runner::SolverRunner;
use threefive::stat::{run_once as stat_once, StatOptions};
use threefive::tune::{
    hill_climb, verify_candidate, BenchProber, ProbeBudget, SearchSpace, TuneDb, TuneEntry,
    TunedPlan,
};

type Opts = HashMap<String, String>;

/// Anything a subcommand can fail with. Every variant prints as
/// `error: ...` and exits nonzero.
#[derive(Debug)]
enum CmdError {
    Cli(CliError),
    Exec(ExecError),
    Lbm(LbmError),
    Io(std::io::Error),
    Msg(String),
}

impl fmt::Display for CmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmdError::Cli(e) => write!(f, "{e}"),
            CmdError::Exec(e) => write!(f, "{e}"),
            CmdError::Lbm(e) => write!(f, "{e}"),
            CmdError::Io(e) => write!(f, "{e}"),
            CmdError::Msg(m) => f.write_str(m),
        }
    }
}

impl From<CliError> for CmdError {
    fn from(e: CliError) -> Self {
        CmdError::Cli(e)
    }
}
impl From<ExecError> for CmdError {
    fn from(e: ExecError) -> Self {
        CmdError::Exec(e)
    }
}
impl From<LbmError> for CmdError {
    fn from(e: LbmError) -> Self {
        CmdError::Lbm(e)
    }
}
impl From<std::io::Error> for CmdError {
    fn from(e: std::io::Error) -> Self {
        CmdError::Io(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let opts = cli::parse_opts(rest);
    let result = match cmd.as_str() {
        "plan" => cmd_plan(&opts),
        "run" => cmd_run(&opts),
        "lbm" => cmd_lbm(&opts),
        "bench" => cmd_bench(&opts),
        "tune" => cmd_tune(&opts),
        "trace" => cmd_trace(&opts),
        "analyze" => cmd_analyze(&opts),
        "serve" => cmd_serve(&opts),
        "loadgen" => cmd_loadgen(&opts),
        "stat" => cmd_stat(&opts),
        "gpu" => cmd_gpu(&opts),
        "info" => cmd_info(),
        "help" | "--help" | "-h" => {
            usage();
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command: {other}\n");
            usage();
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "threefive — 3.5-D blocking for stencil computations (SC 2010 reproduction)

USAGE:
  threefive plan  --kernel 7pt|27pt|lbm --machine i7|gtx285|fermi
                  [--precision sp|dp] [--cache BYTES]
  threefive run   --variant ref|simd|25d|3d|4d|temporal|35d|tile35
                  [--n 128] [--steps 8] [--tile T] [--dimt K] [--threads N]
                  [--schedule lag35d|wavefront|diamond]
                  [--reps R] [--warmup W] [--precision sp|dp] [--db TUNE.json]
  threefive lbm   --scenario box|cavity|channel
                  --variant scalar|simd|temporal|35d
                  [--n 48] [--steps 60] [--tile T] [--dimt K] [--threads N]
                  [--schedule lag35d|wavefront|diamond]
                  [--timing] [--trace] [--out DIR] [--deadline MS]
  threefive bench [--n 64] [--steps 4] [--reps 3] [--warmup 1]
                  [--tile T] [--dimt K] [--threads N]
                  [--schedule lag35d|wavefront|diamond]
                  [--precision sp|dp|both] [--out DIR] [--db TUNE.json]
  threefive bench --validate FILE
  threefive tune  [--workload stencil|lbm|both] [--n 64] [--steps 2]
                  [--probes 24] [--deadline-ms 60000] [--threads N]
                  [--reps R] [--warmup W] [--precision sp|dp|both]
                  [--schedule all|lag35d|wavefront|diamond]
                  [--db TUNE.json]
  threefive tune  --validate FILE
  threefive trace [--nx X --ny Y --nz Z | --n N] [--dimt K] [--steps S]
                  [--tile T] [--threads N] [--workload stencil|lbm]
                  [--schedule lag35d|wavefront|diamond]
                  [--out DIR]
  threefive trace --validate FILE
  threefive analyze [--root DIR] [--deny-findings] [--out DIR]
                  [--baseline FILE] [--write-baseline]
                  [--model-check] [--mc-schedules N] [--mc-steps N]
                  [--mc-preemptions N|none]
  threefive analyze --replay TRACE.json [--mc-steps N]
  threefive analyze --validate FILE
  threefive serve [--addr 127.0.0.1:7435] [--metrics-addr HOST:PORT]
                  [--teams 2] [--threads N] [--queue 64] [--dispatchers 2]
                  [--max-n 128] [--quiet] [--tune-db FILE]
  threefive loadgen [--addr 127.0.0.1:7435] [--tenants 8] [--jobs 64]
                  [--workload stencil|lbm|mix] [--n 16] [--steps 4]
                  [--tile T] [--dimt K] [--deadline MS]
                  [--chaos] [--verify] [--verify-latency] [--out DIR]
  threefive loadgen --validate FILE
  threefive stat  [--addr 127.0.0.1:7435] [--watch SECS] [--events N]
                  [--level debug|info|warn|error] [--check] [--jsonl]
  threefive gpu   [--n 96] [--steps 2]
  threefive info"
    );
}

fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// Parses `--schedule` into a temporal-blocking schedule; defaults to the
/// paper's 3.5-D lag schedule.
fn parse_schedule(opts: &Opts) -> Result<ScheduleKind, CmdError> {
    let s = cli::getstr(opts, "schedule", "lag35d");
    ScheduleKind::parse(&s).ok_or_else(|| {
        CmdError::Msg(format!(
            "unknown schedule '{s}' (expected lag35d, wavefront or diamond)"
        ))
    })
}

/// A tuned plan pulled from the `TUNE.json` database, plus a one-line
/// provenance string for the console.
struct TunedChoice {
    tile: usize,
    dim_t: usize,
    threads: usize,
    schedule: ScheduleKind,
    provenance: String,
}

/// Consults the autotuner database for (kernel, precision, `n`³) on this
/// host. Only consulted when the user pinned none of `--tile`, `--dimt`,
/// `--threads` or `--schedule` — explicit flags always win — and
/// `--db none` disables the lookup entirely. A missing database file is a plain miss (the
/// caller falls back to the analytical plan); a present-but-invalid one
/// is a diagnosed error, never silently ignored.
fn tuned_lookup(
    opts: &Opts,
    kernel: &str,
    dp: bool,
    n: usize,
) -> Result<Option<TunedChoice>, CmdError> {
    if ["tile", "dimt", "threads", "schedule"]
        .iter()
        .any(|k| opts.contains_key(*k))
    {
        return Ok(None);
    }
    let db_path = cli::getstr(opts, "db", "TUNE.json");
    if db_path == "none" {
        return Ok(None);
    }
    let Some(db) = TuneDb::load(std::path::Path::new(&db_path)).map_err(CmdError::Msg)? else {
        return Ok(None);
    };
    let host = HostInfo::detect();
    let precision = if dp { "dp" } else { "sp" };
    Ok(db
        .lookup(&host.fingerprint, kernel, precision, [n, n, n])
        .map(|e| TunedChoice {
            tile: e.plan.tile,
            dim_t: e.plan.dim_t,
            threads: e.plan.threads,
            schedule: e.plan.schedule,
            provenance: format!(
                "{} plan from {db_path}: tile {} dim_T {} threads {} schedule {} \
                 ({:.1} MUPS tuned vs {:.1} scalar floor)",
                e.plan.source,
                e.plan.tile,
                e.plan.dim_t,
                e.plan.threads,
                e.plan.schedule,
                e.mups,
                e.scalar_mups
            ),
        }))
}

fn machine_by_name(name: &str) -> Result<Machine, CmdError> {
    match name {
        "i7" | "corei7" => Ok(core_i7()),
        "gtx285" | "gpu" => Ok(gtx285()),
        "fermi" => Ok(fermi()),
        other => Err(CmdError::Msg(format!(
            "unknown machine '{other}' (expected i7, gtx285 or fermi)"
        ))),
    }
}

fn cmd_plan(opts: &Opts) -> Result<(), CmdError> {
    let machine = machine_by_name(&cli::getstr(opts, "machine", "i7"))?;
    let precision = match cli::getstr(opts, "precision", "sp").as_str() {
        "sp" => Precision::Sp,
        "dp" => Precision::Dp,
        other => {
            return Err(CmdError::Msg(format!(
                "unknown precision '{other}' (expected sp or dp)"
            )))
        }
    };
    let kernel = cli::getstr(opts, "kernel", "7pt");
    let traffic = match kernel.as_str() {
        "7pt" => seven_point_traffic(),
        "27pt" => twenty_seven_point_traffic(),
        "lbm" => lbm_traffic(),
        other => {
            return Err(CmdError::Msg(format!(
                "unknown kernel '{other}' (expected 7pt, 27pt or lbm)"
            )))
        }
    };
    let cache = cli::get(opts, "cache", machine.fast_storage_bytes)?;
    println!(
        "planning {} ({}) on {} with 𝒞 = {} KB",
        traffic.name,
        precision.label(),
        machine.name,
        cache / 1024
    );
    println!(
        "  γ = {:.3} B/op, Γ = {:.3} B/op",
        traffic.gamma(precision),
        machine.big_gamma(precision)
    );
    match plan_35d(
        traffic.gamma(precision),
        machine.big_gamma(precision),
        cache,
        traffic.elem_bytes(precision),
        traffic.radius,
    ) {
        Ok(p) => {
            println!(
                "  dim_T = {}, tile = {}x{}, κ = {:.3}",
                p.dim_t, p.dim_xy, p.dim_xy, p.kappa
            );
            println!(
                "  buffers: {:.2} MB; effective γ after blocking: {:.3} (target ≤ {:.3})",
                p.buffer_bytes as f64 / (1 << 20) as f64,
                p.effective_gamma,
                machine.big_gamma(precision)
            );
        }
        // "does not fit" is an informative planner answer, not a failure.
        Err(e) => println!("  {e}"),
    }
    Ok(())
}

/// Maps a `run` CLI variant name to the bench harness's ladder label.
fn stencil_label(variant: &str) -> Result<&'static str, CmdError> {
    Ok(match variant {
        "ref" => "scalar",
        "simd" => "simd no-blocking",
        "25d" => "spatial only",
        "3d" => "3D blocking",
        "4d" => "4D blocking",
        "temporal" => "temporal only",
        "35d" => "3.5D blocking",
        "tile35" => "tile 3.5D",
        other => {
            return Err(CmdError::Msg(format!(
            "unknown variant '{other}' (expected ref, simd, 25d, 3d, 4d, temporal, 35d or tile35)"
        )))
        }
    })
}

fn cmd_run(opts: &Opts) -> Result<(), CmdError> {
    let n: usize = cli::get(opts, "n", 128)?;
    let steps: usize = cli::get(opts, "steps", 8)?;
    let cfg = BenchConfig {
        warmup: cli::get(opts, "warmup", 1)?,
        reps: cli::get(opts, "reps", 1)?,
    };
    let variant = cli::getstr(opts, "variant", "35d");
    let label = stencil_label(&variant)?;
    let dp = cli::getstr(opts, "precision", "sp") == "dp";
    // Blocking parameters: explicit flags beat the tuner database beats
    // the analytical defaults.
    let tuned = tuned_lookup(opts, "7pt", dp, n)?;
    let (tile, dim_t, threads, schedule) = match &tuned {
        Some(t) => {
            println!("  {}", t.provenance);
            (t.tile, t.dim_t, t.threads, t.schedule)
        }
        None => (
            cli::get(opts, "tile", n.min(360))?,
            cli::get(opts, "dimt", 2)?,
            cli::get(opts, "threads", host_threads())?,
            parse_schedule(opts)?,
        ),
    };
    let dim = Dim3::cube(n);
    let team = ThreadTeam::new(threads);
    // Blocking parameters come straight from the user; the harness routes
    // them through `Blocking35::try_new`, so `--dimt 0` is a diagnosed
    // error, not a panic.
    let m = if dp {
        measure_seven_point_scheduled::<f64>(
            &cfg,
            label,
            dim,
            steps,
            tile,
            dim_t,
            Some(&team),
            schedule,
        )?
    } else {
        measure_seven_point_scheduled::<f32>(
            &cfg,
            label,
            dim,
            steps,
            tile,
            dim_t,
            Some(&team),
            schedule,
        )?
    };
    println!(
        "7-point {} on {dim}, {steps} steps, variant {variant}, schedule {schedule}, \
         {threads} threads",
        if dp { "DP" } else { "SP" }
    );
    println!(
        "  {:.3} s median ({} timed rep(s) after {} warmup), {:.1} interior Mupdates/s",
        m.median_secs(),
        m.secs.len(),
        cfg.warmup,
        m.mups
    );
    print!(
        "  recompute overhead κ {:.3}, modeled DRAM {:.1} MB",
        m.kappa,
        m.stats.dram_bytes() as f64 / (1 << 20) as f64
    );
    match m.barrier_share {
        Some(s) => println!(", barrier-wait share {:.1}%", s * 100.0),
        None => println!(),
    }
    Ok(())
}

fn cmd_lbm(opts: &Opts) -> Result<(), CmdError> {
    let n: usize = cli::get(opts, "n", 48)?;
    let steps: usize = cli::get(opts, "steps", 60)?;
    let tile: usize = cli::get(opts, "tile", 32.min(n))?;
    let dim_t: usize = cli::get(opts, "dimt", 3)?;
    let threads: usize = cli::get(opts, "threads", host_threads())?;
    let dim = Dim3::cube(n);
    let scenario = cli::getstr(opts, "scenario", "cavity");
    let mut lat: Lattice<f64> = match scenario.as_str() {
        "box" => scenarios::closed_box(dim, 1.2),
        "cavity" => scenarios::lid_driven_cavity(dim, 1.2, 0.08),
        "channel" => scenarios::channel_with_sphere(dim, 1.1, 0.05, n as f64 / 8.0),
        other => {
            return Err(CmdError::Msg(format!(
                "unknown scenario '{other}' (expected box, cavity or channel)"
            )))
        }
    };
    let team = ThreadTeam::new(threads);
    let variant = cli::getstr(opts, "variant", "35d");
    let schedule = parse_schedule(opts)?;
    // Validate user-supplied blocking before any executor can panic.
    let blocking = match variant.as_str() {
        "scalar" | "simd" => None,
        "temporal" => {
            Some(LbmBlocking::try_new(n.max(1), n.max(1), dim_t)?.with_schedule(schedule))
        }
        "35d" => Some(LbmBlocking::try_new(tile, tile, dim_t)?.with_schedule(schedule)),
        other => {
            return Err(CmdError::Msg(format!(
                "unknown variant '{other}' (expected scalar, simd, temporal or 35d)"
            )))
        }
    };
    // Observability, same knobs as `threefive trace`: `--timing` prints the
    // per-thread barrier-wait share, `--trace` additionally exports a
    // Chrome trace; both route through the 3.5-D pipeline's Observer entry
    // point. `--deadline MS` arms the watchdog on barrier episodes.
    let timing: bool = cli::get(opts, "timing", false)?;
    let trace: bool = cli::get(opts, "trace", false)?;
    let deadline_ms: u64 = cli::get(opts, "deadline", 0)?;
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    if (timing || trace || deadline.is_some()) && blocking.is_none() {
        return Err(CmdError::Msg(format!(
            "--timing/--trace/--deadline require a 3.5-D variant (temporal or 35d), \
             not '{variant}'"
        )));
    }
    let instr = if timing || trace {
        Instrument::enabled(threads)
    } else {
        Instrument::disabled()
    };
    let tracer = if trace {
        Tracer::enabled(threads)
    } else {
        Tracer::disabled()
    };
    let obs = Observer::new(&instr, &tracer);
    let sweep = |lat: &mut Lattice<f64>, s: usize, obs: &Observer<'_>| -> Result<(), CmdError> {
        match variant.as_str() {
            "scalar" => {
                lbm_naive_sweep(lat, s, LbmMode::Scalar, Some(&team));
            }
            "simd" => {
                lbm_naive_sweep(lat, s, LbmMode::Simd, Some(&team));
            }
            // `temporal` is the whole-plane special case of the same
            // blocking, so both 3.5-D variants share one entry point.
            "temporal" | "35d" => {
                let Some(b) = blocking else {
                    return Err(CmdError::Msg(format!(
                        "internal: no blocking constructed for 3.5-D variant '{variant}'"
                    )));
                };
                try_lbm35d_sweep(lat, s, b, Some(&team), deadline, obs)?;
            }
            other => {
                return Err(CmdError::Msg(format!(
                    "internal: variant '{other}' escaped validation"
                )))
            }
        }
        Ok(())
    };
    // The first step is run untimed: it absorbs the first-touch page
    // faults on the never-written destination buffer without changing the
    // physics (the state still advances exactly `steps` steps). It is also
    // kept out of the trace/timing so they reflect warm-cache behavior.
    let timed_steps = if steps > 1 {
        sweep(&mut lat, 1, &Observer::disabled())?;
        steps - 1
    } else {
        steps
    };
    let t0 = Instant::now();
    if timed_steps > 0 {
        sweep(&mut lat, timed_steps, &obs)?;
    }
    let secs = t0.elapsed().as_secs_f64();
    // MLUPS over interior sites only — the bounce-back rim is not a
    // lattice update — and over the timed steps only.
    let interior_updates = dim.interior_region(1).len() as f64 * timed_steps as f64;
    let mlups = if secs > 0.0 {
        interior_updates / secs / 1e6
    } else {
        0.0
    };
    let probe = lat.macroscopic(n / 2, n / 2, n / 2);
    println!(
        "D3Q19 LBM {scenario} on {dim}, {steps} steps, variant {variant}, schedule {schedule}"
    );
    println!(
        "  {secs:.3} s over {timed_steps} timed step(s), {mlups:.2} interior MLUPS; \
         center: rho = {:.4}, u = ({:+.4}, {:+.4}, {:+.4})",
        probe.rho.to_f64(),
        probe.u[0].to_f64(),
        probe.u[1].to_f64(),
        probe.u[2].to_f64()
    );
    if instr.is_enabled() {
        println!(
            "  barrier-wait share {:.1}%",
            instr.timing().barrier_share() * 100.0
        );
    }
    if tracer.is_enabled() {
        let snapshot = tracer.snapshot();
        let process = format!("threefive lbm {scenario} {dim} dimT={dim_t} sched={schedule}");
        let text = format!("{}\n", trace_to_chrome_json(&snapshot, &process));
        validate_trace_str(&text)
            .map_err(|e| CmdError::Msg(format!("internal: exported trace invalid: {e}")))?;
        let out_dir = std::path::PathBuf::from(cli::getstr(opts, "out", "."));
        std::fs::create_dir_all(&out_dir)?;
        let path = out_dir.join("TRACE_lbm_run.json");
        std::fs::write(&path, &text)?;
        println!("wrote {} (open at ui.perfetto.dev)", path.display());
        print_trace_summary(&snapshot);
    }
    Ok(())
}

fn bench_entry(
    m: &Measurement,
    precision: &str,
    grid: [usize; 3],
    steps: usize,
    threads: usize,
    cfg: &BenchConfig,
    telemetry: Option<Telemetry>,
) -> BenchEntry {
    BenchEntry {
        variant: m.label.to_string(),
        schedule: m
            .schedule
            .map_or_else(|| "none".to_string(), |s| s.as_str().to_string()),
        precision: precision.to_string(),
        grid,
        steps,
        threads,
        warmup: cfg.warmup,
        reps: cfg.reps.max(1),
        median_secs: m.median_secs(),
        min_secs: m.min_secs(),
        max_secs: m.max_secs(),
        mups: m.mups,
        interior_updates: m.interior_updates,
        modeled_dram_bytes: m.stats.dram_bytes(),
        kappa: m.kappa,
        barrier_share: m.barrier_share,
        telemetry,
    }
}

fn print_bench_entry(e: &BenchEntry) {
    let barrier = e
        .barrier_share
        .map_or("     -".to_string(), |s| format!("{:5.1}%", s * 100.0));
    // Attainment vs the paper's reference machine (see bench::counters).
    let attain = e
        .telemetry
        .as_ref()
        .and_then(|t| t.counters.get("roofline_attainment_pct"))
        .map_or("     -".to_string(), |a| format!("{a:5.1}%"));
    println!(
        "  {:4} {:20} {:9} {:>9.3} ms {:>8.1} MUPS  κ {:>5.3}  barrier {barrier}  attain {attain}",
        e.precision,
        e.variant,
        e.schedule,
        e.median_secs * 1e3,
        e.mups,
        e.kappa
    );
    if let Some(t) = &e.telemetry {
        if let Some(sim) = t.counters.get("cachesim_dram_bytes") {
            println!(
                "       {:20} modeled DRAM {:>7.2} MB vs cachesim {:>7.2} MB",
                "",
                e.modeled_dram_bytes as f64 / (1 << 20) as f64,
                sim / (1 << 20) as f64
            );
        }
    }
}

fn cmd_bench(opts: &Opts) -> Result<(), CmdError> {
    if let Some(path) = opts.get("validate") {
        let text = std::fs::read_to_string(path)?;
        let report = BenchReport::validate_str(&text)
            .map_err(|e| CmdError::Msg(format!("{path}: invalid BENCH report: {e}")))?;
        println!(
            "{path}: valid BENCH report (kind = {}, schema v{}, {} entries)",
            report.kind,
            report.schema_version,
            report.entries.len()
        );
        return Ok(());
    }

    let n: usize = cli::get(opts, "n", 64)?;
    let steps: usize = cli::get(opts, "steps", 4)?;
    let tile: usize = cli::get(opts, "tile", n.min(360))?;
    let dim_t: usize = cli::get(opts, "dimt", 2)?;
    let threads: usize = cli::get(opts, "threads", host_threads())?;
    let cfg = BenchConfig {
        warmup: cli::get(opts, "warmup", 1)?,
        reps: cli::get(opts, "reps", 3)?,
    };
    let dp0 = cli::getstr(opts, "precision", "sp") == "dp";
    let flag_schedule = parse_schedule(opts)?;
    // Per-kernel tuned blocking (tile, dim_T, schedule) when no explicit
    // flags pin it; the thread count stays bench-wide so variants compare
    // like for like on one team.
    let (stencil_tile, stencil_dim_t, stencil_sched) = match tuned_lookup(opts, "7pt", dp0, n)? {
        Some(t) => {
            println!("stencil: {}", t.provenance);
            (t.tile, t.dim_t, t.schedule)
        }
        None => (tile, dim_t, flag_schedule),
    };
    let (lbm_tile, lbm_dim_t, lbm_sched) = match tuned_lookup(opts, "lbm", dp0, n)? {
        Some(t) => {
            println!("lbm: {}", t.provenance);
            (t.tile, t.dim_t, t.schedule)
        }
        None => (tile, dim_t, flag_schedule),
    };
    let precisions: &[&str] = match cli::getstr(opts, "precision", "sp").as_str() {
        "sp" => &["sp"],
        "dp" => &["dp"],
        "both" => &["sp", "dp"],
        other => {
            return Err(CmdError::Msg(format!(
                "unknown precision '{other}' (expected sp, dp or both)"
            )))
        }
    };
    let out_dir = std::path::PathBuf::from(cli::getstr(opts, "out", "."));
    let dim = Dim3::cube(n);
    let grid = [dim.nx, dim.ny, dim.nz];
    let team = ThreadTeam::new(threads);

    println!(
        "bench: {n}^3, {steps} steps, {} warmup + {} timed rep(s), {threads} threads, \
         tile {tile}, dim_T {dim_t}, schedule {flag_schedule}",
        cfg.warmup,
        cfg.reps.max(1)
    );

    let mut stencil = BenchReport::new("stencil");
    println!("\n7-point stencil:");
    for &prec in precisions {
        let p = if prec == "dp" {
            Precision::Dp
        } else {
            Precision::Sp
        };
        for &variant in STENCIL_VARIANTS {
            let m = if prec == "dp" {
                measure_seven_point_scheduled::<f64>(
                    &cfg,
                    variant,
                    dim,
                    steps,
                    stencil_tile,
                    stencil_dim_t,
                    Some(&team),
                    stencil_sched,
                )?
            } else {
                measure_seven_point_scheduled::<f32>(
                    &cfg,
                    variant,
                    dim,
                    steps,
                    stencil_tile,
                    stencil_dim_t,
                    Some(&team),
                    stencil_sched,
                )?
            };
            let tel = stencil_telemetry(p, &m, dim, steps, stencil_tile, stencil_dim_t);
            let e = bench_entry(&m, prec, grid, steps, threads, &cfg, Some(tel));
            print_bench_entry(&e);
            stencil.entries.push(e);
        }
    }

    let mut lbm = BenchReport::new("lbm");
    println!("\nD3Q19 LBM (lid-driven cavity):");
    for &prec in precisions {
        let p = if prec == "dp" {
            Precision::Dp
        } else {
            Precision::Sp
        };
        for &variant in LBM_VARIANTS {
            let m = if prec == "dp" {
                measure_lbm_scheduled::<f64>(
                    &cfg,
                    variant,
                    n,
                    steps,
                    lbm_tile,
                    lbm_dim_t,
                    Some(&team),
                    lbm_sched,
                )?
            } else {
                measure_lbm_scheduled::<f32>(
                    &cfg,
                    variant,
                    n,
                    steps,
                    lbm_tile,
                    lbm_dim_t,
                    Some(&team),
                    lbm_sched,
                )?
            };
            let tel = lbm_telemetry(p, &m, n, lbm_tile, lbm_dim_t);
            let e = bench_entry(&m, prec, grid, steps, threads, &cfg, Some(tel));
            print_bench_entry(&e);
            lbm.entries.push(e);
        }
    }

    std::fs::create_dir_all(&out_dir)?;
    for (name, report) in [("BENCH_stencil.json", &stencil), ("BENCH_lbm.json", &lbm)] {
        let path = out_dir.join(name);
        std::fs::write(&path, report.to_json_string())?;
        println!(
            "wrote {} ({} entries)",
            path.display(),
            report.entries.len()
        );
    }
    Ok(())
}

fn cmd_tune(opts: &Opts) -> Result<(), CmdError> {
    if let Some(path) = opts.get("validate") {
        let text = std::fs::read_to_string(path)?;
        let db = TuneDb::validate_str(&text)
            .map_err(|e| CmdError::Msg(format!("{path}: invalid TUNE database: {e}")))?;
        // Schema-valid is not enough: stored plans must still pass the
        // race checker and the never-persist-a-loser invariant today.
        let problems = db.revalidate();
        if !problems.is_empty() {
            for p in &problems {
                eprintln!("  {p}");
            }
            return Err(CmdError::Msg(format!(
                "{path}: {} stored entr{} failed revalidation",
                problems.len(),
                if problems.len() == 1 { "y" } else { "ies" }
            )));
        }
        println!(
            "{path}: valid TUNE database ({} entr{}, all plans re-validated)",
            db.entries.len(),
            if db.entries.len() == 1 { "y" } else { "ies" }
        );
        return Ok(());
    }

    cli::ensure_known(
        opts,
        &[
            "workload",
            "n",
            "steps",
            "probes",
            "deadline-ms",
            "threads",
            "reps",
            "warmup",
            "precision",
            "schedule",
            "db",
            "validate",
        ],
    )?;
    let n: usize = cli::get(opts, "n", 64)?;
    let steps: usize = cli::get(opts, "steps", 2)?;
    let probes: usize = cli::get(opts, "probes", 24)?;
    let deadline_ms: u64 = cli::get(opts, "deadline-ms", 60_000)?;
    let max_threads: usize = cli::get(opts, "threads", host_threads())?;
    let cfg = BenchConfig {
        warmup: cli::get(opts, "warmup", 1)?,
        reps: cli::get(opts, "reps", 1)?,
    };
    if n == 0 || steps == 0 || probes == 0 || max_threads == 0 {
        return Err(CmdError::Msg(
            "--n, --steps, --probes and --threads must be positive".into(),
        ));
    }
    let workloads: &[ProbeWorkload] = match cli::getstr(opts, "workload", "both").as_str() {
        "stencil" => &[ProbeWorkload::Stencil],
        "lbm" => &[ProbeWorkload::Lbm],
        "both" => &[ProbeWorkload::Stencil, ProbeWorkload::Lbm],
        other => {
            return Err(CmdError::Msg(format!(
                "unknown workload '{other}' (expected stencil, lbm or both)"
            )))
        }
    };
    let precisions: &[bool] = match cli::getstr(opts, "precision", "sp").as_str() {
        "sp" => &[false],
        "dp" => &[true],
        "both" => &[false, true],
        other => {
            return Err(CmdError::Msg(format!(
                "unknown precision '{other}' (expected sp, dp or both)"
            )))
        }
    };
    // `--schedule all` (the default) searches every temporal-blocking
    // schedule as one more hill-climb axis; a concrete name pins it.
    let schedule_pin = match cli::getstr(opts, "schedule", "all").as_str() {
        "all" => None,
        s => Some(ScheduleKind::parse(s).ok_or_else(|| {
            CmdError::Msg(format!(
                "unknown schedule '{s}' (expected all, lag35d, wavefront or diamond)"
            ))
        })?),
    };
    let db_path = std::path::PathBuf::from(cli::getstr(opts, "db", "TUNE.json"));

    let host = HostInfo::detect();
    // The analytical seed comes from the paper's CPU machine model — the
    // very numbers whose blind extrapolation this command exists to
    // correct with measurements.
    let machine = core_i7();
    let budget = ProbeBudget {
        max_probes: probes,
        max_duration: Some(Duration::from_millis(deadline_ms)),
    };
    let mut db = TuneDb::load(&db_path)
        .map_err(CmdError::Msg)?
        .unwrap_or_default();

    println!(
        "tune: host {} — {n}^3, {steps} probe step(s), {} warmup + {} rep(s) per probe, \
         budget {probes} probe(s) / {deadline_ms} ms per campaign",
        host.fingerprint,
        cfg.warmup,
        cfg.reps.max(1)
    );

    for &workload in workloads {
        for &dp in precisions {
            let p = if dp { Precision::Dp } else { Precision::Sp };
            let precision = if dp { "dp" } else { "sp" };
            let kernel = workload.kernel_name();
            let traffic = match workload {
                ProbeWorkload::Stencil => seven_point_traffic(),
                ProbeWorkload::Lbm => lbm_traffic(),
            };
            let space = SearchSpace {
                n,
                max_threads,
                cache_bytes: machine.fast_storage_bytes,
                elem_bytes: traffic.elem_bytes(p),
                r: traffic.radius,
                schedule: schedule_pin,
            };
            let seeds = space.seeds(traffic.gamma(p), machine.big_gamma(p));
            let analytical_seed = seeds.first().copied();
            let mut prober = BenchProber {
                cfg,
                workload,
                n,
                steps,
                dp,
            };
            let out = hill_climb(&space, &seeds, &mut prober, &budget).map_err(CmdError::Msg)?;

            println!(
                "\n{kernel} {precision}: scalar floor {:.1} MUPS; {} probe(s), {} candidate(s)",
                out.scalar_mups,
                out.probes_used,
                out.history.len()
            );
            if let Some(am) = out.analytical_mups {
                println!("  analytical seed measured at {am:.1} MUPS");
            }
            match out.winner {
                Some((c, mups)) => {
                    // Speed never shortcuts correctness: the winner must
                    // pass the race checker and reproduce the scalar
                    // reference bit-exactly before it may be persisted.
                    verify_candidate(workload, n, steps, dp, &c).map_err(CmdError::Msg)?;
                    let source = if analytical_seed == Some(c) {
                        PlanSource::Analytical
                    } else {
                        PlanSource::Tuned
                    };
                    let entry = TuneEntry {
                        fingerprint: host.fingerprint.clone(),
                        kernel: kernel.to_string(),
                        precision: precision.to_string(),
                        grid: [n, n, n],
                        plan: TunedPlan {
                            tile: c.tile,
                            dim_t: c.dim_t,
                            threads: c.threads,
                            schedule: c.schedule,
                            source,
                        },
                        mups,
                        scalar_mups: out.scalar_mups,
                        analytical_mups: out.analytical_mups,
                        probes: out.probes_used as u64,
                        probe_steps: steps,
                    };
                    let outcome = db.record_winner(entry).map_err(CmdError::Msg)?;
                    println!(
                        "  winner: tile {} dim_T {} threads {} schedule {} at {mups:.1} MUPS \
                         ({source}) — {outcome}",
                        c.tile, c.dim_t, c.threads, c.schedule
                    );
                }
                None => println!(
                    "  no candidate beat the scalar floor; nothing persisted (consumers fall \
                     back to the analytical plan)"
                ),
            }
        }
    }

    db.save(&db_path).map_err(CmdError::Msg)?;
    println!(
        "\nwrote {} ({} entr{})",
        db_path.display(),
        db.entries.len(),
        if db.entries.len() == 1 { "y" } else { "ies" }
    );
    Ok(())
}

/// Prints the per-thread timeline summary of a trace snapshot.
fn print_trace_summary(snapshot: &TraceSnapshot) {
    println!("\nper-thread timeline:");
    println!(
        "  {:>3} {:>8} {:>12} {:>12} {:>8} {:>8}",
        "tid", "events", "compute ms", "barrier ms", "share", "dropped"
    );
    for (tid, tt) in snapshot.threads.iter().enumerate() {
        let mut plane_ns = 0u64;
        let mut barrier_ns = 0u64;
        for e in &tt.events {
            match e.kind {
                TraceEventKind::Plane { .. } => plane_ns += e.duration_ns(),
                TraceEventKind::Barrier { .. } => barrier_ns += e.duration_ns(),
                _ => {}
            }
        }
        let total = plane_ns + barrier_ns;
        let share = if total > 0 {
            barrier_ns as f64 / total as f64
        } else {
            0.0
        };
        println!(
            "  {tid:>3} {:>8} {:>12.3} {:>12.3} {:>7.1}% {:>8}",
            tt.events.len(),
            plane_ns as f64 / 1e6,
            barrier_ns as f64 / 1e6,
            share * 100.0,
            tt.dropped
        );
    }
}

/// Prints the attainment/κ/DRAM counter table of a telemetry block.
fn print_attainment_table(tel: &Telemetry) {
    println!("\nattainment vs {} (reference machine):", tel.machine);
    for (name, value) in tel.counters.iter() {
        println!("  {name:28} {value:>16.3}");
    }
}

fn cmd_trace(opts: &Opts) -> Result<(), CmdError> {
    if let Some(path) = opts.get("validate") {
        let text = std::fs::read_to_string(path)?;
        let s = validate_trace_str(&text)
            .map_err(|e| CmdError::Msg(format!("{path}: invalid trace: {e}")))?;
        println!(
            "{path}: valid Chrome trace ({} events: {} spans, {} instants, {} threads)",
            s.events, s.spans, s.instants, s.threads
        );
        return Ok(());
    }

    let n: usize = cli::get(opts, "n", 64)?;
    let nx: usize = cli::get(opts, "nx", n)?;
    let ny: usize = cli::get(opts, "ny", n)?;
    let nz: usize = cli::get(opts, "nz", n)?;
    let dim_t: usize = cli::get(opts, "dimt", 4)?;
    // One dim_T chunk by default: exactly one span per (plane, level).
    let steps: usize = cli::get(opts, "steps", dim_t.max(1))?;
    let tile: usize = cli::get(opts, "tile", nx.max(ny))?;
    let threads: usize = cli::get(opts, "threads", host_threads())?;
    let workload = cli::getstr(opts, "workload", "stencil");
    let schedule = parse_schedule(opts)?;
    let out_dir = std::path::PathBuf::from(cli::getstr(opts, "out", "."));
    let dim = Dim3::new(nx, ny, nz);
    let team = ThreadTeam::new(threads);
    let tracer = Tracer::enabled(threads);
    let instr = Instrument::enabled(threads);

    let (file_name, measurement, telemetry) = match workload.as_str() {
        "stencil" => {
            let b = Blocking35::try_new(tile.min(nx), tile.min(ny), dim_t)?.with_schedule(schedule);
            let kernel = SevenPoint::<f32>::heat(0.125);
            let initial =
                Grid3::<f32>::from_fn(dim, |x, y, z| ((x * 13 + y * 7 + z * 3) % 17) as f32 * 0.1);
            let mut grids = DoubleGrid::from_initial(initial);
            let t0 = Instant::now();
            let stats = try_parallel35d_sweep(
                &kernel,
                &mut grids,
                steps,
                b,
                &team,
                None,
                &Observer::new(&instr, &tracer),
            )?;
            let secs = t0.elapsed().as_secs_f64();
            let timing = instr.timing();
            let interior = dim.interior_region(kernel.radius()).len() as u64 * steps as u64;
            let m = Measurement::from_parts(
                "3.5D blocking",
                vec![secs],
                interior,
                stats,
                stats.overestimation(),
                Some(timing.barrier_share()),
                Some(timing.wait_hist),
            );
            let tel = stencil_telemetry(Precision::Sp, &m, dim, steps, tile, dim_t);
            ("TRACE_stencil.json", m, tel)
        }
        "lbm" => {
            let b =
                LbmBlocking::try_new(tile.min(nx), tile.min(ny), dim_t)?.with_schedule(schedule);
            let mut lat: Lattice<f32> = scenarios::lid_driven_cavity(dim, 1.2, 0.05);
            let t0 = Instant::now();
            try_lbm35d_sweep(
                &mut lat,
                steps,
                b,
                Some(&team),
                None,
                &Observer::new(&instr, &tracer),
            )?;
            let secs = t0.elapsed().as_secs_f64();
            let timing = instr.timing();
            // Model the traffic the way `measure_lbm` does: each dim_T
            // chunk streams the whole lattice in and out once.
            let q = threefive::lbm::model::Q as u64;
            let lattice_bytes = dim.len() as u64 * q * 4;
            let chunks = steps.div_ceil(dim_t) as u64;
            let stats = threefive::core::stats::SweepStats {
                stencil_updates: 0,
                committed_points: 0,
                dram_bytes_read: lattice_bytes * chunks,
                dram_bytes_written: lattice_bytes * chunks,
            };
            let loaded_x = tile.min(nx) + 2 * dim_t;
            let loaded_y = tile.min(ny) + 2 * dim_t;
            let kappa = threefive::core::planner::kappa_35d(1, dim_t, loaded_x, loaded_y);
            let interior = dim.interior_region(1).len() as u64 * steps as u64;
            let m = Measurement::from_parts(
                "3.5D blocking",
                vec![secs],
                interior,
                stats,
                kappa,
                Some(timing.barrier_share()),
                Some(timing.wait_hist),
            );
            let tel = lbm_telemetry(Precision::Sp, &m, nx.max(ny).max(nz), tile, dim_t);
            ("TRACE_lbm.json", m, tel)
        }
        other => {
            return Err(CmdError::Msg(format!(
                "unknown workload '{other}' (expected stencil or lbm)"
            )))
        }
    };

    let snapshot = tracer.snapshot();
    let process = format!("threefive {workload} {nx}x{ny}x{nz} dimT={dim_t} sched={schedule}");
    let doc = trace_to_chrome_json(&snapshot, &process);
    let text = format!("{doc}\n");
    // Self-check before writing: the exporter's output must satisfy the
    // same validator CI runs on the file.
    let summary = validate_trace_str(&text)
        .map_err(|e| CmdError::Msg(format!("internal: exported trace invalid: {e}")))?;
    std::fs::create_dir_all(&out_dir)?;
    let path = out_dir.join(file_name);
    std::fs::write(&path, &text)?;

    println!(
        "traced {workload} {nx}x{ny}x{nz}, dim_T {dim_t}, schedule {schedule}, {steps} step(s), \
         {threads} thread(s): {:.1} MUPS",
        measurement.mups
    );
    println!(
        "wrote {} ({} events: {} spans, {} instants; open at ui.perfetto.dev)",
        path.display(),
        summary.events,
        summary.spans,
        summary.instants
    );
    if snapshot.total_dropped() > 0 {
        println!(
            "note: {} event(s) dropped by full ring buffers (raise capacity or shrink the grid)",
            snapshot.total_dropped()
        );
    }
    print_trace_summary(&snapshot);
    print_attainment_table(&telemetry);
    Ok(())
}

/// Parses the model-checker exploration budgets from `--mc-schedules`,
/// `--mc-steps` and `--mc-preemptions` (a count, or `none` to lift the
/// preemption bound and explore the full interleaving space).
fn mc_budgets(opts: &Opts) -> Result<threefive::modelcheck::Budgets, CmdError> {
    let defaults = threefive::modelcheck::Budgets::default();
    let max_preemptions = match opts.get("mc-preemptions").map(String::as_str) {
        None => defaults.max_preemptions,
        Some("none") => None,
        Some(s) => Some(s.parse::<usize>().map_err(|_| {
            CmdError::Msg(format!(
                "--mc-preemptions: expected a count or 'none', got '{s}'"
            ))
        })?),
    };
    Ok(threefive::modelcheck::Budgets {
        max_schedules: cli::get(opts, "mc-schedules", defaults.max_schedules)?,
        max_steps: cli::get(opts, "mc-steps", defaults.max_steps)?,
        max_preemptions,
    })
}

/// `threefive analyze --replay FILE`: re-executes a recorded schedule
/// trace step-for-step against current code. Reproducing the recorded
/// failure (or finding it fixed) succeeds; a diverged or different
/// failure is an error.
fn cmd_analyze_replay(path: &str, opts: &Opts) -> Result<(), CmdError> {
    use threefive::modelcheck::{replay, ReplayOutcome, Trace};
    let text = std::fs::read_to_string(path)?;
    let trace =
        Trace::parse(&text).map_err(|e| CmdError::Msg(format!("{path}: invalid trace: {e}")))?;
    let max_steps = cli::get(
        opts,
        "mc-steps",
        threefive::modelcheck::Budgets::default().max_steps,
    )?;
    let what = match &trace.mutation {
        Some(m) => format!("model `{}` + mutation `{m}`", trace.model),
        None => format!("model `{}`", trace.model),
    };
    // A reproduced panic-kind failure panics inside the replay (caught
    // there); keep the default hook from printing its backtrace.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = replay(&trace, max_steps);
    std::panic::set_hook(prev_hook);
    match outcome.map_err(CmdError::Msg)? {
        ReplayOutcome::Reproduced { kind, message } => {
            println!("{path}: reproduced on {what}: {kind}: {message}");
            Ok(())
        }
        ReplayOutcome::Vanished => {
            println!(
                "{path}: schedule ran clean on {what} — the recorded {} no longer reproduces",
                trace.failure_kind
            );
            Ok(())
        }
        ReplayOutcome::Diverged { detail } => Err(CmdError::Msg(format!(
            "{path}: replay diverged from the recorded schedule ({detail}) — \
             the code under {what} changed; re-record the trace"
        ))),
        ReplayOutcome::DifferentFailure { expected, got } => Err(CmdError::Msg(format!(
            "{path}: replay failed differently than recorded: expected {expected}, got {got}"
        ))),
    }
}

/// Runs the model-checker suite (and mutant suite), printing per-model
/// explored-state counts, writing any counterexample traces under
/// `out`, and returning the report section.
fn run_model_check(
    budgets: &threefive::modelcheck::Budgets,
    out: Option<&std::path::Path>,
) -> Result<threefive::analyze::findings::ModelCheckSection, CmdError> {
    use threefive::analyze::findings::{ModelCheckEntry, MutantEntry};
    use threefive::modelcheck::{run_mutants, run_suite, TimeMode};

    let mode_str = |m: TimeMode| match m {
        TimeMode::Never => "never",
        TimeMode::Nondet => "nondet",
    };
    // Mutant scenarios panic by design (the checker catches and records
    // them); silence the default hook so expected panics don't spray
    // backtraces over the report. Restored before returning.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let started = Instant::now();
    let suite = run_suite(budgets);
    let mut models = Vec::new();
    for o in &suite {
        let verdict = match (&o.trace, o.complete) {
            (Some(_), _) => "COUNTEREXAMPLE",
            (None, true) => "exhaustive",
            (None, false) => "budget exhausted (inconclusive)",
        };
        println!(
            "  {} [{}]: {} schedule(s), {} step(s){}: {verdict}",
            o.name,
            mode_str(o.time_mode),
            o.schedules,
            o.steps,
            if o.bounded {
                ", preemption-bounded"
            } else {
                ""
            },
        );
        if let (Some(trace), Some(dir)) = (&o.trace, out) {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(format!("MODELCHECK_{}.json", o.name));
            std::fs::write(&path, trace.to_text())?;
            println!("    wrote counterexample trace to {}", path.display());
        }
        models.push(ModelCheckEntry {
            name: o.name.to_string(),
            time_mode: mode_str(o.time_mode).to_string(),
            schedules: o.schedules as u64,
            steps: o.steps as u64,
            complete: o.complete,
            bounded: o.bounded,
            counterexample: o.trace.is_some(),
        });
    }
    let mutant_suite = run_mutants(budgets);
    std::panic::set_hook(prev_hook);
    let caught = mutant_suite.iter().filter(|m| m.caught()).count();
    println!(
        "  mutants: {caught}/{} seeded bug(s) caught ({:.1}s total)",
        mutant_suite.len(),
        started.elapsed().as_secs_f64()
    );
    let mut mutants = Vec::new();
    for m in &mutant_suite {
        if !m.caught() {
            println!(
                "    ESCAPED: {} on {} ({}) after {} schedule(s)",
                m.mutation, m.model, m.seeded, m.schedules
            );
        }
        mutants.push(MutantEntry {
            mutation: m.mutation.to_string(),
            model: m.model.to_string(),
            caught: m.caught(),
            schedules: m.schedules as u64,
        });
    }
    Ok(threefive::analyze::findings::ModelCheckSection { models, mutants })
}

fn cmd_analyze(opts: &Opts) -> Result<(), CmdError> {
    if let Some(path) = opts.get("validate") {
        let text = std::fs::read_to_string(path)?;
        let report = AnalyzeReport::validate_str(&text)
            .map_err(|e| CmdError::Msg(format!("{path}: invalid ANALYZE report: {e}")))?;
        println!(
            "{path}: valid ANALYZE report (schema v{}, {} finding(s), {} schedule config(s))",
            report.schema_version,
            report.findings.len(),
            report.configs_checked
        );
        return Ok(());
    }
    if let Some(path) = opts.get("replay") {
        return cmd_analyze_replay(path, opts);
    }

    let root = std::path::PathBuf::from(cli::getstr(opts, "root", "."));
    let deny: bool = cli::get(opts, "deny-findings", false)?;
    // The baseline defaults to the repo's checked-in suppression file;
    // an explicitly named one must exist, the default may be absent.
    let baseline_path = match opts.get("baseline") {
        Some(path) => std::path::PathBuf::from(path),
        None => root.join("ANALYZE_baseline.json"),
    };
    let baseline_text = match opts.get("baseline") {
        Some(path) => Some(std::fs::read_to_string(path)?),
        None => std::fs::read_to_string(&baseline_path).ok(),
    };
    let mut report =
        threefive::analyze::analyze_tree(&root, baseline_text.as_deref()).map_err(CmdError::Msg)?;

    if cli::get(opts, "model-check", false)? {
        println!("model-check:");
        let budgets = mc_budgets(opts)?;
        let out_dir = opts.get("out").map(std::path::PathBuf::from);
        report.model_check = Some(run_model_check(&budgets, out_dir.as_deref())?);
    }
    // Self-check before writing: the emitted document must satisfy the
    // same validator CI runs on the artifact.
    let text = format!("{}\n", report.to_json_string());
    AnalyzeReport::validate_str(&text)
        .map_err(|e| CmdError::Msg(format!("internal: emitted report invalid: {e}")))?;

    let active = report.active_findings().count();
    let suppressed = report.findings.len() - active;
    println!(
        "lint: {} file(s) scanned, {} finding(s) ({suppressed} suppressed)",
        report.files_scanned, active
    );
    for f in report.findings.iter().filter(|f| f.suppressed.is_none()) {
        println!("  {}: [{}] {}", f.locus(), f.rule, f.message);
    }
    let per_schedule = report
        .schedule_configs
        .iter()
        .map(|(name, count)| format!("{name} {count}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "schedule: {} config(s) checked ({per_schedule}): {}",
        report.configs_checked,
        if report.violations.is_empty() {
            "race-free".to_string()
        } else {
            format!("{} violation(s)", report.violations.len())
        }
    );
    for v in &report.violations {
        println!(
            "  [{}] step {} ring {} slot {} (R={} dim_T={} threads={} nz={} ly={}): {}",
            v.schedule,
            v.step,
            v.ring,
            v.slot,
            v.config.r,
            v.config.c,
            v.config.threads,
            v.config.nz,
            v.config.ly,
            v.detail
        );
    }

    // Baseline ratchet: report unused budget, and tighten the checked-in
    // file on request (budgets only ever go down).
    if let Some(btext) = baseline_text.as_deref() {
        use threefive::analyze::findings::{
            baseline_slack, baseline_to_json_string, parse_baseline, tighten_baseline,
        };
        let baseline = parse_baseline(btext).map_err(CmdError::Msg)?;
        let slack = baseline_slack(&report.findings, &baseline);
        for s in &slack {
            println!(
                "baseline: {} in {} uses {} of {} allowed ({} slack)",
                s.rule,
                s.file,
                s.used,
                s.allowed,
                s.slack()
            );
        }
        if cli::get(opts, "write-baseline", false)? {
            let tightened = tighten_baseline(&baseline, &report.findings);
            let dropped = baseline.len() - tightened.len();
            std::fs::write(
                &baseline_path,
                format!("{}\n", baseline_to_json_string(&tightened)),
            )?;
            println!(
                "wrote {} ({} entr(ies), {dropped} dropped)",
                baseline_path.display(),
                tightened.len()
            );
        } else if !slack.is_empty() {
            println!("baseline: run with --write-baseline to ratchet the budgets down");
        }
    }

    if let Some(dir) = opts.get("out") {
        let out_dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&out_dir)?;
        let path = out_dir.join("ANALYZE.json");
        std::fs::write(&path, &text)?;
        println!("wrote {}", path.display());
    }
    if deny && !report.is_clean() {
        let mc_dirty = report.model_check.as_ref().is_some_and(|mc| !mc.is_clean());
        return Err(CmdError::Msg(format!(
            "analysis failed: {active} active finding(s), {} schedule violation(s){}",
            report.violations.len(),
            if mc_dirty {
                ", model-check counterexample or escaped mutant"
            } else {
                ""
            }
        )));
    }
    Ok(())
}

fn cmd_serve(opts: &Opts) -> Result<(), CmdError> {
    // A long-running daemon must not silently ignore a typo'd flag, so
    // the flag set is closed.
    cli::ensure_known(
        opts,
        &[
            "addr",
            "metrics-addr",
            "teams",
            "threads",
            "queue",
            "dispatchers",
            "max-n",
            "quiet",
            "tune-db",
        ],
    )?;
    let teams: usize = cli::get(opts, "teams", 2)?;
    let threads: usize = cli::get(opts, "threads", (host_threads() / teams.max(1)).max(1))?;
    let max_n: u64 = cli::get(opts, "max-n", 128)?;
    let config = ServerConfig {
        addr: cli::getstr(opts, "addr", "127.0.0.1:7435"),
        metrics_addr: opts.get("metrics-addr").cloned(),
        teams,
        threads_per_team: threads,
        queue_capacity: cli::get(opts, "queue", 64)?,
        dispatchers: cli::get(opts, "dispatchers", teams)?,
        limits: AdmissionLimits {
            max_cells: max_n.pow(3),
        },
    };
    let quiet: bool = cli::get(opts, "quiet", false)?;
    if config.teams == 0 || config.threads_per_team == 0 || config.queue_capacity == 0 {
        return Err(CmdError::Msg(
            "--teams, --threads and --queue must be positive".into(),
        ));
    }

    // `--tune-db FILE` serves jobs with this host's tuned plans where
    // the database has an entry for (kernel, n) — an explicit opt-in,
    // since it overrides the per-job blocking clients ask for. Safe in
    // the answer-sense: every rung is bit-identical, so only throughput
    // changes. The named file must exist and re-validate.
    // The metrics plane: per-job telemetry lands in the structured event
    // ring (echoed to stderr as JSONL at info+ unless --quiet) and in
    // the Prometheus registry served over `stats`/`metrics` and the
    // optional --metrics-addr scrape listener.
    let metrics = ServeMetrics::with_options(true, 1024, (!quiet).then_some(Level::Info));
    let runner = match opts.get("tune-db") {
        None => SolverRunner::new(!quiet),
        Some(path) => {
            let db = TuneDb::load(std::path::Path::new(path))
                .map_err(CmdError::Msg)?
                .ok_or_else(|| CmdError::Msg(format!("{path}: no such TUNE database")))?;
            let problems = db.revalidate();
            if !problems.is_empty() {
                return Err(CmdError::Msg(format!(
                    "{path}: refusing to serve from a database that fails revalidation: {}",
                    problems.join("; ")
                )));
            }
            let host = HostInfo::detect();
            let tuned: HashMap<(String, usize), (usize, usize, ScheduleKind)> = db
                .entries
                .iter()
                .filter(|e| e.fingerprint == host.fingerprint && e.precision == "sp")
                .map(|e| {
                    (
                        (e.kernel.clone(), e.grid[0]),
                        (e.plan.tile, e.plan.dim_t, e.plan.schedule),
                    )
                })
                .collect();
            eprintln!(
                "threefive serve: {} tuned plan(s) from {path} for host {}",
                tuned.len(),
                host.fingerprint
            );
            metrics.tune_db_entries.set(tuned.len() as i64);
            SolverRunner::with_tuned(!quiet, tuned)
        }
    };
    let runner = runner.with_metrics(Arc::clone(&metrics));
    signal::install_handlers();
    let server = Server::bind_with_metrics(config.clone(), Arc::new(runner), metrics)?;
    eprintln!(
        "threefive serve: listening on {} ({} team(s) x {} thread(s), queue {}, max grid {}^3); \
         SIGINT/SIGTERM drains and exits",
        server.local_addr()?,
        config.teams,
        config.threads_per_team,
        config.queue_capacity,
        max_n
    );
    if let Some(addr) = server.metrics_local_addr() {
        eprintln!("threefive serve: metrics exposition on http://{addr}/metrics");
    }
    server.run()?;
    eprintln!("threefive serve: drained, all threads joined");
    Ok(())
}

fn cmd_loadgen(opts: &Opts) -> Result<(), CmdError> {
    if let Some(path) = opts.get("validate") {
        let text = std::fs::read_to_string(path)?;
        let report = ServiceReport::validate_str(&text)
            .map_err(|e| CmdError::Msg(format!("{path}: invalid SERVICE report: {e}")))?;
        println!(
            "{path}: valid SERVICE report (schema v{}, {} offered, {} completed, {} mismatched)",
            report.schema_version,
            report.totals.offered,
            report.totals.completed,
            report.totals.mismatched
        );
        if report.totals.mismatched > 0 {
            return Err(CmdError::Msg(format!(
                "{path}: {} completed job(s) returned a checksum that does not match the \
                 scalar reference",
                report.totals.mismatched
            )));
        }
        return Ok(());
    }

    cli::ensure_known(
        opts,
        &[
            "addr",
            "tenants",
            "jobs",
            "workload",
            "n",
            "steps",
            "tile",
            "dimt",
            "deadline",
            "chaos",
            "verify",
            "verify-latency",
            "out",
            "validate",
        ],
    )?;
    let workload = cli::getstr(opts, "workload", "mix");
    let n: usize = cli::get(opts, "n", 16)?;
    let cfg = LoadgenConfig {
        addr: cli::getstr(opts, "addr", "127.0.0.1:7435"),
        tenants: cli::get(opts, "tenants", 8)?,
        jobs: cli::get(opts, "jobs", 64)?,
        n,
        steps: cli::get(opts, "steps", 4)?,
        dim_t: cli::get(opts, "dimt", 2)?,
        tile: cli::get(opts, "tile", n)?,
        deadline: Duration::from_millis(cli::get(opts, "deadline", 10_000u64)?),
        mix: WorkloadMix::parse(&workload).ok_or_else(|| {
            CmdError::Msg(format!(
                "unknown workload '{workload}' (expected stencil, lbm or mix)"
            ))
        })?,
        chaos: cli::get(opts, "chaos", false)?,
        verify: cli::get(opts, "verify", false)?,
        verify_latency: cli::get(opts, "verify-latency", false)?,
    };

    eprintln!(
        "threefive loadgen: {} job(s) from {} tenant(s) against {} (workload {workload}, \
         {n}^3, chaos {}, verify {})",
        cfg.jobs, cfg.tenants, cfg.addr, cfg.chaos, cfg.verify
    );
    let report = run_loadgen(&cfg).map_err(CmdError::Msg)?;
    let text = report.to_json_string();
    // Self-check before writing: the emitted document must satisfy the
    // same validator CI runs on the artifact.
    ServiceReport::validate_str(&text)
        .map_err(|e| CmdError::Msg(format!("internal: emitted report invalid: {e}")))?;

    let t = &report.totals;
    println!(
        "offered {} | accepted {} | completed {} | rejected {} | failed {} | timed out {}",
        t.offered, t.accepted, t.completed, t.rejected, t.failed, t.timed_out
    );
    println!(
        "latency p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        report.latency_ms.p50, report.latency_ms.p90, report.latency_ms.p99, report.latency_ms.max
    );
    println!(
        "throughput {:.1} completed/s of {:.1} offered/s over {:.2} s; rejection rate {:.1}%",
        report.completed_per_sec,
        report.offered_per_sec,
        report.wall_secs,
        report.rejection_rate * 100.0
    );
    if cfg.verify {
        println!(
            "verification: {} bit-identical to the scalar reference, {} mismatched",
            t.verified, t.mismatched
        );
    }
    if let Some(dir) = opts.get("out") {
        let out_dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&out_dir)?;
        let path = out_dir.join("SERVICE_load.json");
        std::fs::write(&path, &text)?;
        println!("wrote {}", path.display());
    }
    if t.mismatched > 0 {
        return Err(CmdError::Msg(format!(
            "{} completed job(s) returned a checksum that does not match the scalar reference",
            t.mismatched
        )));
    }
    Ok(())
}

fn cmd_stat(opts: &Opts) -> Result<(), CmdError> {
    cli::ensure_known(
        opts,
        &["addr", "watch", "events", "level", "check", "jsonl"],
    )?;
    let level_str = cli::getstr(opts, "level", "info");
    let stat = StatOptions {
        addr: cli::getstr(opts, "addr", "127.0.0.1:7435"),
        events: cli::get(opts, "events", 8)?,
        level: Level::parse(&level_str).ok_or_else(|| {
            CmdError::Msg(format!(
                "unknown level '{level_str}' (expected debug, info, warn or error)"
            ))
        })?,
        check: cli::get(opts, "check", false)?,
        jsonl: cli::get(opts, "jsonl", false)?,
    };
    let watch_secs: u64 = cli::get(opts, "watch", 0)?;
    if watch_secs == 0 {
        println!("{}", stat_once(&stat).map_err(CmdError::Msg)?);
        return Ok(());
    }
    // --watch: redraw in place until the daemon goes away or the user
    // interrupts us. A scrape failure ends the loop with the error so a
    // daemon shutdown is visible rather than a frozen last frame.
    loop {
        let frame = stat_once(&stat).map_err(CmdError::Msg)?;
        // ANSI clear-screen + home, like `watch(1)`.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        std::io::stdout().flush()?;
        std::thread::sleep(Duration::from_secs(watch_secs));
    }
}

fn cmd_gpu(opts: &Opts) -> Result<(), CmdError> {
    let n: usize = cli::get(opts, "n", 96)?;
    let steps: usize = cli::get(opts, "steps", 2)?;
    let dim = Dim3::new(n, n / 2, 24);
    let dev = Device::gtx285();
    let k = SevenPointGpu {
        alpha: 0.4,
        beta: 0.1,
    };
    let grid = Grid3::from_fn(dim, |x, y, z| ((x + 2 * y + 3 * z) % 11) as f32 * 0.2);
    println!("simulated GTX 285, {dim}, {steps} steps");
    let (_, s) = gpu_naive(&dev, k, &grid, steps);
    let t = throughput_gtx285(&s, GPU_ALU_EFF);
    println!(
        "  naive:   {:>8.0} MUPS ({} read tx)",
        t.mups, s.gmem_read_tx
    );
    let (_, s) = spatial_sweep(&dev, k, &grid, steps);
    let t = throughput_gtx285(&s, GPU_ALU_EFF);
    println!(
        "  spatial: {:>8.0} MUPS ({} read tx)",
        t.mups, s.gmem_read_tx
    );
    let (_, s) = pipelined35_sweep(
        &dev,
        k,
        &grid,
        steps,
        Pipe35Config {
            ty_loaded: 12,
            overhead_per_update: 1.0,
        },
    );
    let t = throughput_gtx285(&s, GPU_ALU_EFF_TUNED);
    println!(
        "  3.5D:    {:>8.0} MUPS ({} read tx)",
        t.mups, s.gmem_read_tx
    );
    Ok(())
}

fn cmd_info() -> Result<(), CmdError> {
    println!("machine models (Table I + §VIII):\n");
    for m in [core_i7(), gtx285(), fermi()] {
        println!(
            "  {:30} {:>5.0} GB/s peak ({:>5.0} achieved), {:>6.0}/{:>5.0} Gops SP/DP, 𝒞 = {} KB",
            m.name,
            m.peak_bw_gbs,
            m.achieved_bw_gbs,
            m.peak_gops_sp,
            m.peak_gops_dp,
            m.fast_storage_bytes / 1024
        );
    }
    println!("\nkernels (§IV):\n");
    for k in [
        seven_point_traffic(),
        twenty_seven_point_traffic(),
        lbm_traffic(),
    ] {
        println!(
            "  {:20} {:>4} ops/update, γ = {:.2}/{:.2} B/op (SP/DP), R = {}",
            k.name,
            k.ops_per_update,
            k.gamma(Precision::Sp),
            k.gamma(Precision::Dp),
            k.radius
        );
    }
    Ok(())
}
