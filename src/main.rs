//! `threefive` — command-line driver for the 3.5-D blocking library.
//!
//! ```text
//! threefive plan  --kernel 7pt --machine i7 --precision sp
//! threefive run   --variant 35d --n 128 --steps 8 --threads 4
//! threefive lbm   --scenario cavity --variant 35d --n 48 --steps 120
//! threefive gpu   --n 96 --steps 2
//! threefive info
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use threefive::gpu::kernels::{
    naive_sweep as gpu_naive, pipelined35_sweep, spatial_sweep, Pipe35Config, SevenPointGpu,
};
use threefive::gpu::timing::throughput_gtx285;
use threefive::gpu::Device;
use threefive::lbm::scenarios;
use threefive::machine::fermi;
use threefive::machine::roofline::{GPU_ALU_EFF, GPU_ALU_EFF_TUNED};
use threefive::machine::twenty_seven_point_traffic;
use threefive::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let opts = parse_opts(rest);
    match cmd.as_str() {
        "plan" => cmd_plan(&opts),
        "run" => cmd_run(&opts),
        "lbm" => cmd_lbm(&opts),
        "gpu" => cmd_gpu(&opts),
        "info" => cmd_info(),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}\n");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "threefive — 3.5-D blocking for stencil computations (SC 2010 reproduction)

USAGE:
  threefive plan  --kernel 7pt|27pt|lbm --machine i7|gtx285|fermi
                  [--precision sp|dp] [--cache BYTES]
  threefive run   --variant ref|simd|25d|3d|4d|temporal|35d|tile35
                  [--n 128] [--steps 8] [--tile T] [--dimt K] [--threads N]
                  [--precision sp|dp]
  threefive lbm   --scenario box|cavity|channel
                  --variant scalar|simd|temporal|35d
                  [--n 48] [--steps 60] [--tile T] [--dimt K] [--threads N]
  threefive gpu   [--n 96] [--steps 2]
  threefive info"
    );
}

fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let val = it.next().cloned().unwrap_or_else(|| "true".into());
            map.insert(key.to_string(), val);
        }
    }
    map
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn getstr<'a>(opts: &'a HashMap<String, String>, key: &str, default: &'a str) -> String {
    opts.get(key)
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn machine_by_name(name: &str) -> Machine {
    match name {
        "i7" | "corei7" => core_i7(),
        "gtx285" | "gpu" => gtx285(),
        "fermi" => fermi(),
        other => {
            eprintln!("unknown machine {other}; using Core i7");
            core_i7()
        }
    }
}

fn cmd_plan(opts: &HashMap<String, String>) -> ExitCode {
    let machine = machine_by_name(&getstr(opts, "machine", "i7"));
    let precision = if getstr(opts, "precision", "sp") == "dp" {
        Precision::Dp
    } else {
        Precision::Sp
    };
    let kernel = getstr(opts, "kernel", "7pt");
    let traffic = match kernel.as_str() {
        "7pt" => seven_point_traffic(),
        "27pt" => twenty_seven_point_traffic(),
        "lbm" => lbm_traffic(),
        other => {
            eprintln!("unknown kernel {other}");
            return ExitCode::FAILURE;
        }
    };
    let cache = get(opts, "cache", machine.fast_storage_bytes);
    println!(
        "planning {} ({}) on {} with 𝒞 = {} KB",
        traffic.name,
        precision.label(),
        machine.name,
        cache / 1024
    );
    println!(
        "  γ = {:.3} B/op, Γ = {:.3} B/op",
        traffic.gamma(precision),
        machine.big_gamma(precision)
    );
    match plan_35d(
        traffic.gamma(precision),
        machine.big_gamma(precision),
        cache,
        traffic.elem_bytes(precision),
        traffic.radius,
    ) {
        Ok(p) => {
            println!(
                "  dim_T = {}, tile = {}x{}, κ = {:.3}",
                p.dim_t, p.dim_xy, p.dim_xy, p.kappa
            );
            println!(
                "  buffers: {:.2} MB; effective γ after blocking: {:.3} (target ≤ {:.3})",
                p.buffer_bytes as f64 / (1 << 20) as f64,
                p.effective_gamma,
                machine.big_gamma(precision)
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("  {e}");
            ExitCode::SUCCESS
        }
    }
}

fn cmd_run(opts: &HashMap<String, String>) -> ExitCode {
    let n: usize = get(opts, "n", 128);
    let steps: usize = get(opts, "steps", 8);
    let tile: usize = get(opts, "tile", n.min(360));
    let dim_t: usize = get(opts, "dimt", 2);
    let threads: usize = get(
        opts,
        "threads",
        std::thread::available_parallelism().map_or(1, |c| c.get()),
    );
    let variant = getstr(opts, "variant", "35d");
    let dp = getstr(opts, "precision", "sp") == "dp";
    if dp {
        run_stencil::<f64>(n, steps, tile, dim_t, threads, &variant)
    } else {
        run_stencil::<f32>(n, steps, tile, dim_t, threads, &variant)
    }
}

fn run_stencil<T: Real>(
    n: usize,
    steps: usize,
    tile: usize,
    dim_t: usize,
    threads: usize,
    variant: &str,
) -> ExitCode
where
    SevenPoint<T>: StencilKernel<T>,
{
    let dim = Dim3::cube(n);
    let kernel = SevenPoint::<T>::heat(T::from_f64(0.125));
    let mut grids = DoubleGrid::from_initial(Grid3::from_fn(dim, |x, y, z| {
        T::from_f64(((x * 13 + y * 7 + z * 3) % 17) as f64 * 0.1)
    }));
    let team = ThreadTeam::new(threads);
    let t0 = Instant::now();
    let stats = match variant {
        "ref" => reference_sweep(&kernel, &mut grids, steps),
        "simd" => simd_sweep(&kernel, &mut grids, steps),
        "25d" => blocked25d_sweep(&kernel, &mut grids, steps, tile, tile),
        "3d" => blocked3d_sweep(&kernel, &mut grids, steps, tile.min(64)),
        "4d" => blocked4d_sweep(&kernel, &mut grids, steps, tile.min(48), dim_t),
        "temporal" => temporal_sweep(&kernel, &mut grids, steps, dim_t),
        "35d" => parallel35d_sweep(
            &kernel,
            &mut grids,
            steps,
            Blocking35::new(tile.min(n), tile.min(n), dim_t),
            &team,
        ),
        "tile35" => tile_parallel35d_sweep(
            &kernel,
            &mut grids,
            steps,
            Blocking35::new(tile.min(n), tile.min(n), dim_t),
            &team,
        ),
        other => {
            eprintln!("unknown variant {other}");
            return ExitCode::FAILURE;
        }
    };
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "7-point {} on {dim}, {steps} steps, variant {variant}, {threads} threads",
        if T::BYTES == 4 { "SP" } else { "DP" }
    );
    println!(
        "  {secs:.3} s, {:.1} Mupdates/s, recompute overhead {:.3}, modeled DRAM {:.1} MB",
        (dim.len() * steps) as f64 / secs / 1e6,
        stats.overestimation(),
        stats.dram_bytes() as f64 / (1 << 20) as f64
    );
    ExitCode::SUCCESS
}

fn cmd_lbm(opts: &HashMap<String, String>) -> ExitCode {
    let n: usize = get(opts, "n", 48);
    let steps: usize = get(opts, "steps", 60);
    let tile: usize = get(opts, "tile", 32.min(n));
    let dim_t: usize = get(opts, "dimt", 3);
    let threads: usize = get(
        opts,
        "threads",
        std::thread::available_parallelism().map_or(1, |c| c.get()),
    );
    let dim = Dim3::cube(n);
    let scenario = getstr(opts, "scenario", "cavity");
    let mut lat: Lattice<f64> = match scenario.as_str() {
        "box" => scenarios::closed_box(dim, 1.2),
        "cavity" => scenarios::lid_driven_cavity(dim, 1.2, 0.08),
        "channel" => scenarios::channel_with_sphere(dim, 1.1, 0.05, n as f64 / 8.0),
        other => {
            eprintln!("unknown scenario {other}");
            return ExitCode::FAILURE;
        }
    };
    let team = ThreadTeam::new(threads);
    let variant = getstr(opts, "variant", "35d");
    let t0 = Instant::now();
    match variant.as_str() {
        "scalar" => lbm_naive_sweep(&mut lat, steps, LbmMode::Scalar, Some(&team)),
        "simd" => lbm_naive_sweep(&mut lat, steps, LbmMode::Simd, Some(&team)),
        "temporal" => lbm_temporal_sweep(&mut lat, steps, dim_t, Some(&team)),
        "35d" => lbm35d_sweep(
            &mut lat,
            steps,
            LbmBlocking::new(tile, tile, dim_t),
            Some(&team),
        ),
        other => {
            eprintln!("unknown variant {other}");
            return ExitCode::FAILURE;
        }
    };
    let secs = t0.elapsed().as_secs_f64();
    let probe = lat.macroscopic(n / 2, n / 2, n / 2);
    println!("D3Q19 LBM {scenario} on {dim}, {steps} steps, variant {variant}");
    println!(
        "  {secs:.3} s, {:.2} MLUPS; center: rho = {:.4}, u = ({:+.4}, {:+.4}, {:+.4})",
        (dim.len() * steps) as f64 / secs / 1e6,
        probe.rho.to_f64(),
        probe.u[0].to_f64(),
        probe.u[1].to_f64(),
        probe.u[2].to_f64()
    );
    ExitCode::SUCCESS
}

fn cmd_gpu(opts: &HashMap<String, String>) -> ExitCode {
    let n: usize = get(opts, "n", 96);
    let steps: usize = get(opts, "steps", 2);
    let dim = Dim3::new(n, n / 2, 24);
    let dev = Device::gtx285();
    let k = SevenPointGpu {
        alpha: 0.4,
        beta: 0.1,
    };
    let grid = Grid3::from_fn(dim, |x, y, z| ((x + 2 * y + 3 * z) % 11) as f32 * 0.2);
    println!("simulated GTX 285, {dim}, {steps} steps");
    let (_, s) = gpu_naive(&dev, k, &grid, steps);
    let t = throughput_gtx285(&s, GPU_ALU_EFF);
    println!(
        "  naive:   {:>8.0} MUPS ({} read tx)",
        t.mups, s.gmem_read_tx
    );
    let (_, s) = spatial_sweep(&dev, k, &grid, steps);
    let t = throughput_gtx285(&s, GPU_ALU_EFF);
    println!(
        "  spatial: {:>8.0} MUPS ({} read tx)",
        t.mups, s.gmem_read_tx
    );
    let (_, s) = pipelined35_sweep(
        &dev,
        k,
        &grid,
        steps,
        Pipe35Config {
            ty_loaded: 12,
            overhead_per_update: 1.0,
        },
    );
    let t = throughput_gtx285(&s, GPU_ALU_EFF_TUNED);
    println!(
        "  3.5D:    {:>8.0} MUPS ({} read tx)",
        t.mups, s.gmem_read_tx
    );
    ExitCode::SUCCESS
}

fn cmd_info() -> ExitCode {
    println!("machine models (Table I + §VIII):\n");
    for m in [core_i7(), gtx285(), fermi()] {
        println!(
            "  {:30} {:>5.0} GB/s peak ({:>5.0} achieved), {:>6.0}/{:>5.0} Gops SP/DP, 𝒞 = {} KB",
            m.name,
            m.peak_bw_gbs,
            m.achieved_bw_gbs,
            m.peak_gops_sp,
            m.peak_gops_dp,
            m.fast_storage_bytes / 1024
        );
    }
    println!("\nkernels (§IV):\n");
    for k in [
        seven_point_traffic(),
        twenty_seven_point_traffic(),
        lbm_traffic(),
    ] {
        println!(
            "  {:20} {:>4} ops/update, γ = {:.2}/{:.2} B/op (SP/DP), R = {}",
            k.name,
            k.ops_per_update,
            k.gamma(Precision::Sp),
            k.gamma(Precision::Dp),
            k.radius
        );
    }
    ExitCode::SUCCESS
}
