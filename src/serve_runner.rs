//! The facade's [`JobRunner`]: service job specs → degradation ladder.
//!
//! The serve crate cannot depend on this crate (the dependency arrow
//! points binary → service → executors), so it defines the
//! [`JobRunner`] trait and this module implements it. A job's inputs are
//! a pure function of its spec — a fixed seed pattern for the stencil,
//! fixed scenario parameters for LBM — which makes every result
//! *independently checkable*: anyone can recompute the scalar-reference
//! checksum for a spec ([`reference_checksum`]) and compare it with the
//! daemon's answer, whichever ladder rung actually served the job.
//!
//! Checksums fold the exact bit patterns (`f32::to_bits`) of every cell
//! through FNV-1a, so they are equal **iff** the result is bit-identical
//! — the same guarantee the ladder itself makes.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use threefive_bench::json::Json;
use threefive_core::exec::ScheduleKind;
use threefive_core::planner::kappa_35d;
use threefive_core::{Plan35D, SevenPoint};
use threefive_grid::{Dim3, DoubleGrid, Grid3};
use threefive_lbm::{lbm_naive_sweep, scenarios, Lattice, LbmMode};
use threefive_metrics::{FieldValue, Level};
use threefive_serve::LbmScenario;
use threefive_serve::{
    Completed, JobFailure, JobId, JobRunner, JobSpec, RunOutcome, ServeMetrics, Workload,
};
use threefive_sync::{Instrument, Observer, ThreadTeam, Tracer};

use crate::run::{run_lbm_plan_on_team, run_plan_on_team, LbmRung, RunOptions, Rung};

/// Diffusion coefficient every stencil job uses (fixed: results must be
/// reproducible from the spec alone).
pub const STENCIL_ALPHA: f32 = 0.125;

/// The deterministic seed grid for stencil jobs of edge `n` (the same
/// pattern the `trace` subcommand uses).
pub fn job_grid(n: usize) -> Grid3<f32> {
    Grid3::from_fn(Dim3::cube(n), |x, y, z| {
        ((x * 13 + y * 7 + z * 3) % 17) as f32 * 0.1
    })
}

/// The deterministic initial lattice for LBM jobs: fixed scenario
/// parameters per wire name (matching the `lbm` subcommand's defaults).
pub fn job_lattice(scenario: LbmScenario, n: usize) -> Lattice<f32> {
    let dim = Dim3::cube(n);
    match scenario {
        LbmScenario::ClosedBox => scenarios::closed_box(dim, 1.2),
        LbmScenario::Cavity => scenarios::lid_driven_cavity(dim, 1.2, 0.08),
        LbmScenario::Channel => scenarios::channel_with_sphere(dim, 1.1, 0.05, n as f64 / 8.0),
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, values: &[f32]) -> u64 {
    for v in values {
        // Bit pattern, not numeric value: 0.0 and -0.0 hash differently,
        // which is exactly what a bit-identity check wants.
        for b in v.to_bits().to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// FNV-1a over the bit patterns of every cell.
pub fn grid_checksum(grid: &Grid3<f32>) -> u64 {
    fnv_fold(FNV_OFFSET, grid.as_slice())
}

/// FNV-1a over the bit patterns of all 19 distribution components of the
/// source (current-state) buffer.
pub fn lattice_checksum(lat: &Lattice<f32>) -> u64 {
    let mut hash = FNV_OFFSET;
    for q in 0..threefive_lbm::model::Q {
        hash = fnv_fold(hash, lat.src().comp(q));
    }
    hash
}

/// Computes the scalar-reference checksum for `spec` — the value every
/// ladder rung must reproduce bit-exactly. This is the verifier the
/// chaos tests and `loadgen --verify` compare daemon responses against.
pub fn reference_checksum(spec: &JobSpec) -> u64 {
    match spec.workload {
        Workload::Stencil => {
            let kernel = SevenPoint::<f32>::heat(STENCIL_ALPHA);
            let mut grids = DoubleGrid::from_initial(job_grid(spec.n));
            threefive_core::exec::reference_sweep(&kernel, &mut grids, spec.steps);
            grid_checksum(grids.src())
        }
        Workload::Lbm(sc) => {
            let mut lat = job_lattice(sc, spec.n);
            lbm_naive_sweep(&mut lat, spec.steps, LbmMode::Scalar, None);
            lattice_checksum(&lat)
        }
    }
}

/// Builds the forced 3.5-D plan the given `tile`/`dim_t` ask for (the
/// spec's own blocking, or a tuned override). The spec was validated at
/// admission, so the blocking constructors accept it; the plan metadata
/// (κ, buffers) is filled in honestly for telemetry.
fn forced_plan(tile: usize, dim_t: usize, n: usize) -> Plan35D {
    let dim_xy = tile.clamp(1, n.max(1));
    let dim_t = dim_t.max(1);
    let loaded = dim_xy + 2 * dim_t;
    Plan35D {
        radius: 1,
        dim_t,
        dim_xy,
        kappa: kappa_35d(1, dim_t, loaded, loaded),
        buffer_bytes: 4 * (2 + 2) * dim_t * dim_xy * dim_xy,
        effective_gamma: 0.0,
    }
}

/// Executes service jobs through the graceful-degradation ladder on a
/// leased team.
pub struct SolverRunner {
    /// Emit one JSONL telemetry line per job to stderr, tagged with the
    /// job id.
    pub log: bool,
    /// Host-tuned blocking overrides from a `TUNE.json` database, keyed
    /// by (kernel wire name, grid edge) → (tile, dim_T, schedule). When a
    /// job's (kernel, n) has an entry, the daemon serves it with the
    /// tuned plan instead of the spec's blocking — safe because every
    /// rung and every schedule is bit-identical, so only throughput
    /// changes, never the answer.
    tuned: HashMap<(String, usize), (usize, usize, ScheduleKind)>,
    /// Whether a tuning database was loaded at all; hit/miss counters
    /// only tick when there is a database to hit.
    db_loaded: bool,
    /// The daemon's metrics plane. When present, per-job telemetry goes
    /// through the structured event log (stderr echo is the event log's
    /// job) and engine observer totals land in the registry; the legacy
    /// `eprintln!` JSONL path only remains for metrics-less embedding.
    metrics: Option<Arc<ServeMetrics>>,
}

impl SolverRunner {
    /// A runner with telemetry logging on (the daemon default).
    pub fn new(log: bool) -> Self {
        Self {
            log,
            tuned: HashMap::new(),
            db_loaded: false,
            metrics: None,
        }
    }

    /// A runner that serves jobs with host-tuned plans where available.
    pub fn with_tuned(
        log: bool,
        tuned: HashMap<(String, usize), (usize, usize, ScheduleKind)>,
    ) -> Self {
        Self {
            log,
            tuned,
            db_loaded: true,
            metrics: None,
        }
    }

    /// Attaches the daemon's metrics plane (builder style).
    pub fn with_metrics(mut self, metrics: Arc<ServeMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The tuned (tile, dim_T, schedule) override for a job, if stored.
    fn tuned_blocking(&self, spec: &JobSpec) -> Option<(usize, usize, ScheduleKind)> {
        let kernel = match spec.workload {
            Workload::Stencil => "7pt",
            Workload::Lbm(_) => "lbm",
        };
        self.tuned.get(&(kernel.to_string(), spec.n)).copied()
    }

    fn emit(&self, job_id: JobId, spec: &JobSpec, completed: &Completed, plan_source: &str) {
        if let Some(metrics) = &self.metrics {
            // Structured path: one leveled, job-stamped event; stderr
            // echo (if configured) is handled by the event log itself.
            metrics.event(
                Level::Info,
                "job_done",
                Some(job_id),
                vec![
                    (
                        "workload".to_string(),
                        FieldValue::from(spec.workload.to_string()),
                    ),
                    ("n".to_string(), FieldValue::from(spec.n as u64)),
                    ("steps".to_string(), FieldValue::from(spec.steps as u64)),
                    (
                        "rung".to_string(),
                        FieldValue::from(completed.rung.as_str()),
                    ),
                    (
                        "downgrades".to_string(),
                        FieldValue::from(u64::from(completed.downgrades)),
                    ),
                    (
                        "checksum".to_string(),
                        FieldValue::from(format!("{:016x}", completed.checksum)),
                    ),
                    ("exec_ms".to_string(), FieldValue::from(completed.exec_ms)),
                    ("plan_source".to_string(), FieldValue::from(plan_source)),
                ],
            );
            return;
        }
        if !self.log {
            return;
        }
        let doc = Json::Obj(vec![
            ("job".into(), Json::num(job_id as f64)),
            ("workload".into(), Json::str(spec.workload.to_string())),
            ("n".into(), Json::num(spec.n as f64)),
            ("steps".into(), Json::num(spec.steps as f64)),
            ("rung".into(), Json::str(completed.rung.clone())),
            (
                "downgrades".into(),
                Json::num(f64::from(completed.downgrades)),
            ),
            (
                "checksum".into(),
                Json::str(format!("{:016x}", completed.checksum)),
            ),
            (
                "barrier_share".into(),
                completed.barrier_share.map_or(Json::Null, Json::num),
            ),
            ("exec_ms".into(), Json::num(completed.exec_ms)),
            ("plan_source".into(), Json::str(plan_source)),
        ]);
        eprintln!("threefive-serve: {}", compact(&doc));
    }
}

/// One-line rendering (the JSON writer pretty-prints; telemetry lines
/// must stay single-line for line-oriented consumers).
fn compact(doc: &Json) -> String {
    doc.to_string()
        .lines()
        .map(str::trim)
        .collect::<Vec<_>>()
        .join(" ")
}

impl JobRunner for SolverRunner {
    fn run(
        &self,
        spec: &JobSpec,
        team: &ThreadTeam,
        remaining: Duration,
        job_id: JobId,
    ) -> RunOutcome {
        let t0 = Instant::now();
        let tuned = self.tuned_blocking(spec);
        let plan_source = if tuned.is_some() { "tuned" } else { "spec" };
        if let Some(metrics) = &self.metrics {
            if self.db_loaded {
                if tuned.is_some() {
                    metrics.tune_db_hits.inc();
                } else {
                    metrics.tune_db_misses.inc();
                }
            }
        }
        let (tile, dim_t, schedule) =
            tuned.unwrap_or((spec.tile, spec.dim_t, ScheduleKind::Lag35d));
        let opts = RunOptions {
            threads: team.threads(),
            deadline: Some(remaining),
            verify_finite: true,
            log: false,
            schedule,
        };
        let instr = Instrument::enabled(team.threads().max(1));
        let tracer = Tracer::disabled();
        let obs = Observer::new(&instr, &tracer);

        // The ladder already converts member panics into downgrades; this
        // outer guard covers everything else (setup, checksumming), so a
        // poisoned job can never unwind into the dispatch loop.
        let attempt = catch_unwind(AssertUnwindSafe(|| match spec.workload {
            Workload::Stencil => {
                let kernel = SevenPoint::<f32>::heat(STENCIL_ALPHA);
                let mut grids = DoubleGrid::from_initial(job_grid(spec.n));
                let report = run_plan_on_team(
                    &kernel,
                    &mut grids,
                    spec.steps,
                    Ok(forced_plan(tile, dim_t, spec.n)),
                    &opts,
                    Some(team),
                    &obs,
                )
                .map_err(|e| e.to_string())?;
                let parallel_failed = report
                    .downgrades
                    .iter()
                    .any(|d| d.from == Rung::Parallel35D);
                Ok((
                    report.rung.to_string(),
                    report.downgrades.len() as u32,
                    grid_checksum(grids.src()),
                    report.rung == Rung::Parallel35D,
                    parallel_failed,
                ))
            }
            Workload::Lbm(sc) => {
                let mut lat = job_lattice(sc, spec.n);
                let blocking = threefive_lbm::LbmBlocking::try_new(
                    tile.clamp(1, spec.n.max(1)),
                    tile.clamp(1, spec.n.max(1)),
                    dim_t.max(1),
                )
                .map_err(|e| e.to_string())?
                .with_schedule(schedule);
                let report =
                    run_lbm_plan_on_team(&mut lat, spec.steps, blocking, &opts, Some(team), &obs)
                        .map_err(|e| e.to_string())?;
                let parallel_failed = report
                    .downgrades
                    .iter()
                    .any(|d| d.from == LbmRung::Parallel35D);
                Ok((
                    report.rung.to_string(),
                    report.downgrades.len() as u32,
                    lattice_checksum(&lat),
                    report.rung == LbmRung::Parallel35D,
                    parallel_failed,
                ))
            }
        }));

        let exec_ms = t0.elapsed().as_secs_f64() * 1e3;
        if let Some(metrics) = &self.metrics {
            // Fold the sweep's observer totals into the engine counters
            // and the barrier-wait histogram — no extra clock reads, the
            // instrumented sweep already took them.
            let timing = instr.timing();
            metrics.on_engine_sweep(
                timing.total_compute_ns(),
                timing.total_barrier_ns(),
                &timing.wait_hist.counts,
            );
        }
        match attempt {
            Ok(Ok((rung, downgrades, checksum, parallel_served, parallel_failed))) => {
                let completed = Completed {
                    rung,
                    downgrades,
                    checksum,
                    // The barrier share is only meaningful when the
                    // leased team's parallel rung served the job.
                    barrier_share: parallel_served.then(|| instr.timing().barrier_share()),
                    exec_ms,
                };
                self.emit(job_id, spec, &completed, plan_source);
                RunOutcome {
                    result: Ok(completed),
                    // The leased team is probed whenever its rung failed
                    // (panic, stall, non-finite), even though a lower
                    // rung rescued the job — isolation over optimism.
                    team_suspect: parallel_failed || team.is_quarantined(),
                }
            }
            Ok(Err(detail)) => RunOutcome {
                result: Err(JobFailure::Failed { detail }),
                team_suspect: team.is_quarantined(),
            },
            Err(_) => RunOutcome {
                result: Err(JobFailure::Failed {
                    detail: "job setup or checksum panicked".into(),
                }),
                team_suspect: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(workload: Workload) -> JobSpec {
        JobSpec {
            workload,
            n: 12,
            steps: 3,
            dim_t: 2,
            tile: 12,
            deadline: Duration::from_secs(10),
            priority: 0,
        }
    }

    #[test]
    fn stencil_job_matches_scalar_reference_bit_exactly() {
        let s = spec(Workload::Stencil);
        let team = ThreadTeam::new(2);
        let runner = SolverRunner::new(false);
        let out = runner.run(&s, &team, Duration::from_secs(10), 1);
        let completed = out.result.expect("job should complete");
        assert_eq!(completed.checksum, reference_checksum(&s));
        assert!(!out.team_suspect);
    }

    #[test]
    fn lbm_job_matches_scalar_reference_bit_exactly() {
        for sc in [
            LbmScenario::ClosedBox,
            LbmScenario::Cavity,
            LbmScenario::Channel,
        ] {
            let s = spec(Workload::Lbm(sc));
            let team = ThreadTeam::new(2);
            let runner = SolverRunner::new(false);
            let out = runner.run(&s, &team, Duration::from_secs(10), 2);
            let completed = out.result.expect("job should complete");
            assert_eq!(
                completed.checksum,
                reference_checksum(&s),
                "scenario {}",
                sc.name()
            );
        }
    }

    #[test]
    fn checksum_is_bit_sensitive() {
        let a = job_grid(8);
        let mut b = job_grid(8);
        let v = b.get(1, 1, 1);
        b.set(1, 1, 1, v + 1e-7);
        assert_ne!(grid_checksum(&a), grid_checksum(&b));
        assert_eq!(grid_checksum(&a), grid_checksum(&job_grid(8)));
    }

    #[test]
    fn deterministic_inputs_reproduce() {
        let s = spec(Workload::Lbm(LbmScenario::Cavity));
        assert_eq!(reference_checksum(&s), reference_checksum(&s));
    }
}
