//! Graceful-degradation driver: plan → parallel 3.5-D → fallbacks.
//!
//! The executor ladder (paper §VI-A) is ordered by performance; this
//! module walks it in reverse on *failure*. [`run_plan`] tries the fastest
//! applicable rung and degrades — parallel 3.5-D → serial 3.5-D → 2.5-D
//! spatial blocking → scalar reference — whenever the planner rejects the
//! configuration ([`PlanError`]) or a run fails at execution time (member
//! panic, watchdog timeout, non-finite output). Every executor in the
//! ladder is bit-exact with the reference sweep, and the driver snapshots
//! the source grid before each attempt and rolls back before retrying, so
//! **the result is bit-identical no matter which rung finally serves the
//! request**; only throughput degrades.
//!
//! [`run_lbm_plan`] drives the same protocol for the lattice Boltzmann
//! workload, whose pipeline runs on the same streaming engine: parallel
//! 3.5-D → serial 3.5-D → naive SIMD → naive scalar, with per-attempt
//! lattice snapshots and the same bit-identical rollback guarantee.
//!
//! Failures never escape as panics or hangs: worker panics poison the
//! per-Z-step barrier and drain the team (see
//! [`try_parallel35d_sweep`] and [`try_lbm35d_sweep`]), stalls are
//! bounded by the watchdog `deadline` (on by default here, unlike the raw
//! executor API used by the benchmarks), and numerical corruption is
//! caught by the [`check_finite`] guard after every attempt.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use threefive_core::exec::{
    blocked25d_sweep, reference_sweep, try_parallel35d_sweep, Blocking35, ScheduleKind,
};
use threefive_core::stats::SweepStats;
use threefive_core::verify::check_finite;
use threefive_core::{ExecError, Plan35D, PlanError, StencilKernel};
use threefive_grid::{DoubleGrid, Grid3, Real};
use threefive_lbm::{lbm_naive_sweep, try_lbm35d_sweep, Lattice, LbmBlocking, LbmError, LbmMode};
use threefive_sync::{Observer, SyncError, ThreadTeam, TraceEventKind};

/// One rung of the executor ladder, fastest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// Parallel 3.5-D pipeline on a thread team.
    Parallel35D,
    /// Serial 3.5-D pipeline (one-member team).
    Serial35D,
    /// 2.5-D spatial blocking, no temporal blocking.
    Blocked25D,
    /// Scalar reference sweep — always applicable.
    Reference,
}

impl Rung {
    /// Position on the ladder, fastest = 0 — the encoding used by
    /// [`TraceEventKind::Fallback`] events.
    pub fn ladder_index(self) -> u32 {
        match self {
            Rung::Parallel35D => 0,
            Rung::Serial35D => 1,
            Rung::Blocked25D => 2,
            Rung::Reference => 3,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rung::Parallel35D => "parallel 3.5-D",
            Rung::Serial35D => "serial 3.5-D",
            Rung::Blocked25D => "2.5-D spatial",
            Rung::Reference => "scalar reference",
        })
    }
}

/// Record of one abandoned rung: which executor was given up on and why.
#[derive(Clone, Debug, PartialEq)]
pub struct Downgrade {
    /// The rung that failed or was rejected.
    pub from: Rung,
    /// Why it could not serve the request.
    pub reason: ExecError,
}

/// Outcome of a successful [`run_plan`].
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// The rung that produced the final grid contents.
    pub rung: Rung,
    /// Modeled work/traffic accounting from that rung.
    pub stats: SweepStats,
    /// Every downgrade taken on the way, in order. Empty means the first
    /// applicable rung succeeded.
    pub downgrades: Vec<Downgrade>,
}

/// Knobs for [`run_plan`] and [`run_lbm_plan`].
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Team size for the parallel rung.
    pub threads: usize,
    /// Watchdog deadline for barrier episodes of the parallel rung —
    /// **on by default** here (the raw executor API defaults to off so
    /// benchmarks pay no timing overhead). `None` disables it.
    pub deadline: Option<Duration>,
    /// Run the NaN/∞ guard on the result of every rung (and on the input).
    pub verify_finite: bool,
    /// Log downgrades to stderr as they happen.
    pub log: bool,
    /// Temporal-blocking schedule for the 3.5-D stencil rungs. The LBM
    /// ladder takes its schedule from the [`LbmBlocking`] the caller
    /// passes in instead, since that already carries the blocking.
    pub schedule: ScheduleKind,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |c| c.get()),
            deadline: Some(Duration::from_secs(10)),
            verify_finite: true,
            log: true,
            schedule: ScheduleKind::Lag35d,
        }
    }
}

/// Runs `steps` Jacobi time steps under the given 3.5-D `plan`, degrading
/// down the executor ladder on any failure.
///
/// `plan` is the planner's verdict, passed through so a
/// [`PlanError`] (kernel already compute-bound, cache too small) skips
/// both 3.5-D rungs and lands on 2.5-D spatial blocking — the paper's own
/// prescription for those regimes. Execution-time failures (member panic,
/// watchdog timeout, non-finite values) roll the grid back to the
/// pre-attempt snapshot and retry one rung down, so the final contents are
/// bit-identical to [`reference_sweep`] regardless of the serving rung.
///
/// Returns the serving rung, its stats, and the downgrade trail. `Err` is
/// reserved for unrecoverable states: non-finite *input*, or a reference
/// sweep that itself produced non-finite values (a broken kernel).
pub fn run_plan<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    plan: Result<Plan35D, PlanError>,
    opts: &RunOptions,
) -> Result<RunReport, ExecError> {
    run_plan_observed(kernel, grids, steps, plan, opts, &Observer::disabled())
}

/// [`run_plan`] with an [`Observer`] attached.
///
/// The observer's handles are threaded into the 3.5-D rungs (per-plane and
/// per-barrier spans, per-thread timing), and the driver itself marks
/// ladder transitions as instant events on thread 0:
/// [`TraceEventKind::Fallback`] for every downgrade (encoded via
/// [`Rung::ladder_index`]), [`TraceEventKind::Quarantine`] when a failed
/// parallel rung left its team quarantined, and [`TraceEventKind::Heal`]
/// when a later rung then serves the request anyway. A disabled observer
/// never reads the clock, so this is exactly [`run_plan`].
pub fn run_plan_observed<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    plan: Result<Plan35D, PlanError>,
    opts: &RunOptions,
    obs: &Observer<'_>,
) -> Result<RunReport, ExecError> {
    run_plan_on_team(kernel, grids, steps, plan, opts, None, obs)
}

/// [`run_plan_observed`] with the parallel rung scoped to a **borrowed**
/// team.
///
/// The solver service leases persistent teams from a
/// [`TeamPool`](threefive_sync::TeamPool) instead of spawning one per
/// request; passing `Some(team)` makes the parallel rung run on that
/// lease (its size wins over `opts.threads`) so a failure poisons only
/// the caller's team, which the pool then health-probes on checkin. The
/// serial rung always gets a fresh one-member team: it is the retry path
/// after the borrowed team may have been wedged, so it must not share
/// fate with it. `None` reproduces [`run_plan_observed`] exactly.
pub fn run_plan_on_team<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    plan: Result<Plan35D, PlanError>,
    opts: &RunOptions,
    parallel_team: Option<&ThreadTeam>,
    obs: &Observer<'_>,
) -> Result<RunReport, ExecError> {
    if opts.verify_finite {
        // Corrupt input would fail every rung; reject it up front with the
        // offending coordinate instead of walking the whole ladder.
        check_finite(grids.src())?;
    }
    let dim = grids.dim();
    let snapshot = grids.src().clone();
    let mut downgrades: Vec<Downgrade> = Vec::new();
    let mut quarantined = false;
    let mut downgrade = |from: Rung, reason: ExecError, log: bool| {
        if log {
            eprintln!("threefive: {from} executor failed ({reason}); downgrading");
        }
        obs.instant(
            0,
            TraceEventKind::Fallback {
                from: from.ladder_index(),
                to: from.ladder_index() + 1,
            },
        );
        downgrades.push(Downgrade { from, reason });
    };

    let blocking = match plan {
        Ok(p) => Some(
            Blocking35::new(
                p.dim_xy.clamp(1, dim.nx.max(1)),
                p.dim_xy.clamp(1, dim.ny.max(1)),
                p.dim_t.max(1),
            )
            .with_schedule(opts.schedule),
        ),
        Err(e) => {
            // Planner rejection disqualifies both temporal-blocking rungs.
            downgrade(Rung::Parallel35D, ExecError::Plan(e), opts.log);
            downgrade(Rung::Serial35D, ExecError::Plan(e), opts.log);
            None
        }
    };

    // Marks the recovery once a rung serves a request that saw an earlier
    // team quarantine on the way down the ladder.
    let heal_mark = |quarantined: bool| {
        if quarantined {
            obs.instant(0, TraceEventKind::Heal { tid: 0 });
        }
    };

    if let Some(b) = blocking {
        for (rung, threads, deadline) in [
            (Rung::Parallel35D, opts.threads.max(1), opts.deadline),
            (Rung::Serial35D, 1, None),
        ] {
            let owned;
            let team: &ThreadTeam = match (rung, parallel_team) {
                // The caller's lease serves the parallel rung; the serial
                // retry never reuses it (it may be wedged — that can be
                // why we are retrying).
                (Rung::Parallel35D, Some(t)) => t,
                _ => {
                    owned = ThreadTeam::new(threads);
                    &owned
                }
            };
            match try_parallel35d_sweep(kernel, grids, steps, b, team, deadline, obs) {
                Ok(stats) => match finite_ok(grids, opts) {
                    Ok(()) => {
                        heal_mark(quarantined);
                        return Ok(RunReport {
                            rung,
                            stats,
                            downgrades,
                        });
                    }
                    Err(e) => {
                        downgrade(rung, e, opts.log);
                        restore(grids, &snapshot);
                    }
                },
                Err(e) => {
                    downgrade(rung, e, opts.log);
                    restore(grids, &snapshot);
                }
            }
            if team.is_quarantined() {
                // The failed run left a stalled generation behind; the
                // team object is dropped here, but the event records that
                // this request ran through a quarantine.
                quarantined = true;
                obs.instant(0, TraceEventKind::Quarantine { tid: 0 });
            }
        }
    }

    // 2.5-D spatial blocking: no thread team, no temporal blocking. Tile
    // edges come from the plan when there is one; otherwise fall back to
    // whole-plane tiles (always valid, degenerate-but-correct blocking).
    let (tx, ty) = match plan {
        Ok(p) => (
            p.dim_xy.clamp(1, dim.nx.max(1)),
            p.dim_xy.clamp(1, dim.ny.max(1)),
        ),
        Err(_) => (dim.nx.max(1), dim.ny.max(1)),
    };
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        blocked25d_sweep(kernel, grids, steps, tx, ty)
    }));
    match attempt {
        Ok(stats) => match finite_ok(grids, opts) {
            Ok(()) => {
                heal_mark(quarantined);
                return Ok(RunReport {
                    rung: Rung::Blocked25D,
                    stats,
                    downgrades,
                });
            }
            Err(e) => {
                downgrade(Rung::Blocked25D, e, opts.log);
                restore(grids, &snapshot);
            }
        },
        Err(_) => {
            downgrade(
                Rung::Blocked25D,
                ExecError::Sync(SyncError::TeamPanicked { generation: 0 }),
                opts.log,
            );
            restore(grids, &snapshot);
        }
    }

    // Last rung: the scalar reference. If even this produces non-finite
    // values the kernel itself is numerically broken — that is not
    // recoverable by falling further, so it surfaces as `Err`.
    let stats = reference_sweep(kernel, grids, steps);
    finite_ok(grids, opts)?;
    heal_mark(quarantined);
    Ok(RunReport {
        rung: Rung::Reference,
        stats,
        downgrades,
    })
}

fn finite_ok<T: Real>(grids: &DoubleGrid<T>, opts: &RunOptions) -> Result<(), ExecError> {
    if opts.verify_finite {
        check_finite(grids.src())
    } else {
        Ok(())
    }
}

/// Rolls both buffers back to the pre-attempt state so the next rung sees
/// exactly the input the failed rung saw (the bit-identical guarantee).
fn restore<T: Real>(grids: &mut DoubleGrid<T>, snapshot: &Grid3<T>) {
    *grids = DoubleGrid::from_initial(snapshot.clone());
}

/// One rung of the lattice-Boltzmann executor ladder, fastest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LbmRung {
    /// Parallel 3.5-D pipeline on a thread team.
    Parallel35D,
    /// Serial 3.5-D pipeline (one-member team).
    Serial35D,
    /// No-blocking SIMD sweep.
    NaiveSimd,
    /// No-blocking scalar sweep — always applicable.
    NaiveScalar,
}

impl LbmRung {
    /// Position on the ladder, fastest = 0 — the encoding used by
    /// [`TraceEventKind::Fallback`] events.
    pub fn ladder_index(self) -> u32 {
        match self {
            LbmRung::Parallel35D => 0,
            LbmRung::Serial35D => 1,
            LbmRung::NaiveSimd => 2,
            LbmRung::NaiveScalar => 3,
        }
    }
}

impl fmt::Display for LbmRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LbmRung::Parallel35D => "parallel 3.5-D LBM",
            LbmRung::Serial35D => "serial 3.5-D LBM",
            LbmRung::NaiveSimd => "naive SIMD LBM",
            LbmRung::NaiveScalar => "naive scalar LBM",
        })
    }
}

/// Record of one abandoned LBM rung.
#[derive(Clone, Debug, PartialEq)]
pub struct LbmDowngrade {
    /// The rung that failed.
    pub from: LbmRung,
    /// Why it could not serve the request.
    pub reason: LbmError,
}

/// Outcome of a successful [`run_lbm_plan`].
#[derive(Clone, Debug, PartialEq)]
pub struct LbmRunReport {
    /// The rung that produced the final lattice contents.
    pub rung: LbmRung,
    /// Site updates performed by that rung.
    pub updates: u64,
    /// Every downgrade taken on the way, in order.
    pub downgrades: Vec<LbmDowngrade>,
}

/// Advances the lattice `steps` time steps under `blocking`, degrading
/// down the LBM executor ladder on any failure — the lattice counterpart
/// of [`run_plan`], enabled by both workloads sharing one streaming
/// engine.
///
/// Rungs: parallel 3.5-D (team of `opts.threads`, watchdog
/// `opts.deadline`) → serial 3.5-D (one-member team, no deadline) → naive
/// SIMD → naive scalar. The lattice's source distributions are
/// snapshotted before the first attempt and restored before each retry,
/// and every rung is bit-exact with the naive scalar sweep, so the final
/// lattice is bit-identical regardless of the serving rung. Ladder
/// transitions are marked on `obs` exactly as in [`run_plan_observed`]
/// (Fallback / Quarantine / Heal instants, encoded via
/// [`LbmRung::ladder_index`]).
///
/// `Err` is reserved for unrecoverable states: non-finite input
/// distributions, or a scalar sweep that itself produced non-finite
/// values.
pub fn run_lbm_plan<T: Real>(
    lat: &mut Lattice<T>,
    steps: usize,
    blocking: LbmBlocking,
    opts: &RunOptions,
    obs: &Observer<'_>,
) -> Result<LbmRunReport, LbmError> {
    run_lbm_plan_on_team(lat, steps, blocking, opts, None, obs)
}

/// [`run_lbm_plan`] with the parallel rung scoped to a **borrowed** team
/// — the lattice counterpart of [`run_plan_on_team`], with the same
/// contract: `Some(team)` confines parallel-rung failures to the
/// caller's lease, the serial retry always runs on a fresh one-member
/// team, and `None` reproduces [`run_lbm_plan`] exactly.
pub fn run_lbm_plan_on_team<T: Real>(
    lat: &mut Lattice<T>,
    steps: usize,
    blocking: LbmBlocking,
    opts: &RunOptions,
    parallel_team: Option<&ThreadTeam>,
    obs: &Observer<'_>,
) -> Result<LbmRunReport, LbmError> {
    if opts.verify_finite {
        lbm_finite_ok(lat)?;
    }
    let snapshot: Vec<Vec<T>> = (0..threefive_lbm::model::Q)
        .map(|q| lat.src().comp(q).to_vec())
        .collect();
    let mut downgrades: Vec<LbmDowngrade> = Vec::new();
    let mut quarantined = false;
    let mut downgrade = |from: LbmRung, reason: LbmError, log: bool| {
        if log {
            eprintln!("threefive: {from} executor failed ({reason}); downgrading");
        }
        obs.instant(
            0,
            TraceEventKind::Fallback {
                from: from.ladder_index(),
                to: from.ladder_index() + 1,
            },
        );
        downgrades.push(LbmDowngrade { from, reason });
    };
    let heal_mark = |quarantined: bool| {
        if quarantined {
            obs.instant(0, TraceEventKind::Heal { tid: 0 });
        }
    };

    for (rung, threads, deadline) in [
        (LbmRung::Parallel35D, opts.threads.max(1), opts.deadline),
        (LbmRung::Serial35D, 1, None),
    ] {
        let owned;
        let team: &ThreadTeam = match (rung, parallel_team) {
            (LbmRung::Parallel35D, Some(t)) => t,
            _ => {
                owned = ThreadTeam::new(threads);
                &owned
            }
        };
        match try_lbm35d_sweep(lat, steps, blocking, Some(team), deadline, obs) {
            Ok(updates) => match finite_or_restore(lat, opts) {
                Ok(()) => {
                    heal_mark(quarantined);
                    return Ok(LbmRunReport {
                        rung,
                        updates,
                        downgrades,
                    });
                }
                Err(e) => {
                    downgrade(rung, e, opts.log);
                    restore_lattice(lat, &snapshot);
                }
            },
            Err(e) => {
                downgrade(rung, e, opts.log);
                restore_lattice(lat, &snapshot);
            }
        }
        if team.is_quarantined() {
            quarantined = true;
            obs.instant(0, TraceEventKind::Quarantine { tid: 0 });
        }
    }

    // No-blocking SIMD sweep: no team, no rings. A panic here (it shares
    // the collision kernel with every other rung, so this is defensive)
    // degrades to the scalar baseline.
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        lbm_naive_sweep(lat, steps, LbmMode::Simd, None)
    }));
    match attempt {
        Ok(updates) => match finite_or_restore(lat, opts) {
            Ok(()) => {
                heal_mark(quarantined);
                return Ok(LbmRunReport {
                    rung: LbmRung::NaiveSimd,
                    updates,
                    downgrades,
                });
            }
            Err(e) => {
                downgrade(LbmRung::NaiveSimd, e, opts.log);
                restore_lattice(lat, &snapshot);
            }
        },
        Err(_) => {
            downgrade(
                LbmRung::NaiveSimd,
                LbmError::Sync(SyncError::TeamPanicked { generation: 0 }),
                opts.log,
            );
            restore_lattice(lat, &snapshot);
        }
    }

    let updates = lbm_naive_sweep(lat, steps, LbmMode::Scalar, None);
    if opts.verify_finite {
        lbm_finite_ok(lat)?;
    }
    heal_mark(quarantined);
    Ok(LbmRunReport {
        rung: LbmRung::NaiveScalar,
        updates,
        downgrades,
    })
}

fn finite_or_restore<T: Real>(lat: &Lattice<T>, opts: &RunOptions) -> Result<(), LbmError> {
    if opts.verify_finite {
        lbm_finite_ok(lat)
    } else {
        Ok(())
    }
}

/// NaN/∞ guard over every distribution component of the source lattice.
fn lbm_finite_ok<T: Real>(lat: &Lattice<T>) -> Result<(), LbmError> {
    let dim = lat.dim();
    for q in 0..threefive_lbm::model::Q {
        for (i, &v) in lat.src().comp(q).iter().enumerate() {
            let v = v.to_f64();
            if !v.is_finite() {
                return Err(LbmError::NonFinite {
                    comp: q,
                    at: dim.coords(i),
                    value: v,
                });
            }
        }
    }
    Ok(())
}

/// Rolls the lattice back to the pre-attempt snapshot. Restoring the
/// source distributions is sufficient for bit-identical retries: every
/// rung writes all 19 components of every site of the destination each
/// step (non-fluid sites are copied from the time-invariant source), so
/// stale values in the other buffer cannot survive into the result.
fn restore_lattice<T: Real>(lat: &mut Lattice<T>, snapshot: &[Vec<T>]) {
    for (q, comp) in snapshot.iter().enumerate() {
        lat.dst_mut().comp_mut(q).copy_from_slice(comp);
    }
    lat.swap();
}
