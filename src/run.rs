//! Graceful-degradation driver: plan → parallel 3.5-D → fallbacks.
//!
//! The executor ladder (paper §VI-A) is ordered by performance; this
//! module walks it in reverse on *failure*. [`run_plan`] tries the fastest
//! applicable rung and degrades — parallel 3.5-D → serial 3.5-D → 2.5-D
//! spatial blocking → scalar reference — whenever the planner rejects the
//! configuration ([`PlanError`]) or a run fails at execution time (member
//! panic, watchdog timeout, non-finite output). Every executor in the
//! ladder is bit-exact with the reference sweep, and the driver snapshots
//! the source grid before each attempt and rolls back before retrying, so
//! **the result is bit-identical no matter which rung finally serves the
//! request**; only throughput degrades.
//!
//! Failures never escape as panics or hangs: worker panics poison the
//! per-Z-step barrier and drain the team (see
//! [`try_parallel35d_sweep`](threefive_core::exec::try_parallel35d_sweep)),
//! stalls are bounded by the watchdog
//! `deadline` (on by default here, unlike the raw executor API used by
//! the benchmarks), and numerical corruption is caught by the
//! [`check_finite`] guard after every attempt.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use threefive_core::exec::{
    blocked25d_sweep, reference_sweep, try_parallel35d_sweep_traced, Blocking35,
};
use threefive_core::stats::SweepStats;
use threefive_core::verify::check_finite;
use threefive_core::{ExecError, Plan35D, PlanError, StencilKernel};
use threefive_grid::{DoubleGrid, Grid3, Real};
use threefive_sync::{Instrument, SyncError, ThreadTeam, TraceEventKind, Tracer};

/// One rung of the executor ladder, fastest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// Parallel 3.5-D pipeline on a thread team.
    Parallel35D,
    /// Serial 3.5-D pipeline (one-member team).
    Serial35D,
    /// 2.5-D spatial blocking, no temporal blocking.
    Blocked25D,
    /// Scalar reference sweep — always applicable.
    Reference,
}

impl Rung {
    /// Position on the ladder, fastest = 0 — the encoding used by
    /// [`TraceEventKind::Fallback`] events.
    pub fn ladder_index(self) -> u32 {
        match self {
            Rung::Parallel35D => 0,
            Rung::Serial35D => 1,
            Rung::Blocked25D => 2,
            Rung::Reference => 3,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rung::Parallel35D => "parallel 3.5-D",
            Rung::Serial35D => "serial 3.5-D",
            Rung::Blocked25D => "2.5-D spatial",
            Rung::Reference => "scalar reference",
        })
    }
}

/// Record of one abandoned rung: which executor was given up on and why.
#[derive(Clone, Debug, PartialEq)]
pub struct Downgrade {
    /// The rung that failed or was rejected.
    pub from: Rung,
    /// Why it could not serve the request.
    pub reason: ExecError,
}

/// Outcome of a successful [`run_plan`].
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// The rung that produced the final grid contents.
    pub rung: Rung,
    /// Modeled work/traffic accounting from that rung.
    pub stats: SweepStats,
    /// Every downgrade taken on the way, in order. Empty means the first
    /// applicable rung succeeded.
    pub downgrades: Vec<Downgrade>,
}

/// Knobs for [`run_plan`].
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Team size for the parallel rung.
    pub threads: usize,
    /// Watchdog deadline for barrier episodes of the parallel rung —
    /// **on by default** here (the raw executor API defaults to off so
    /// benchmarks pay no timing overhead). `None` disables it.
    pub deadline: Option<Duration>,
    /// Run the NaN/∞ guard on the result of every rung (and on the input).
    pub verify_finite: bool,
    /// Log downgrades to stderr as they happen.
    pub log: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |c| c.get()),
            deadline: Some(Duration::from_secs(10)),
            verify_finite: true,
            log: true,
        }
    }
}

/// Runs `steps` Jacobi time steps under the given 3.5-D `plan`, degrading
/// down the executor ladder on any failure.
///
/// `plan` is the planner's verdict, passed through so a
/// [`PlanError`] (kernel already compute-bound, cache too small) skips
/// both 3.5-D rungs and lands on 2.5-D spatial blocking — the paper's own
/// prescription for those regimes. Execution-time failures (member panic,
/// watchdog timeout, non-finite values) roll the grid back to the
/// pre-attempt snapshot and retry one rung down, so the final contents are
/// bit-identical to [`reference_sweep`] regardless of the serving rung.
///
/// Returns the serving rung, its stats, and the downgrade trail. `Err` is
/// reserved for unrecoverable states: non-finite *input*, or a reference
/// sweep that itself produced non-finite values (a broken kernel).
pub fn run_plan<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    plan: Result<Plan35D, PlanError>,
    opts: &RunOptions,
) -> Result<RunReport, ExecError> {
    run_plan_traced(kernel, grids, steps, plan, opts, &Tracer::disabled())
}

/// [`run_plan`] with an observability [`Tracer`] attached.
///
/// When `tracer` is enabled, the parallel rung records a span per
/// streamed plane × time level and per barrier episode, and the driver
/// itself marks ladder transitions as instant events on thread 0:
/// [`TraceEventKind::Fallback`] for every downgrade (encoded via
/// [`Rung::ladder_index`]), [`TraceEventKind::Quarantine`] when a failed
/// parallel rung left its team quarantined, and [`TraceEventKind::Heal`]
/// when a later rung then serves the request anyway. A disabled tracer
/// never reads the clock, so this is exactly [`run_plan`].
pub fn run_plan_traced<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    plan: Result<Plan35D, PlanError>,
    opts: &RunOptions,
    tracer: &Tracer,
) -> Result<RunReport, ExecError> {
    if opts.verify_finite {
        // Corrupt input would fail every rung; reject it up front with the
        // offending coordinate instead of walking the whole ladder.
        check_finite(grids.src())?;
    }
    let dim = grids.dim();
    let snapshot = grids.src().clone();
    let mut downgrades: Vec<Downgrade> = Vec::new();
    let mut quarantined = false;
    let mut downgrade = |from: Rung, reason: ExecError, log: bool| {
        if log {
            eprintln!("threefive: {from} executor failed ({reason}); downgrading");
        }
        if let Some(ts) = tracer.now_ns() {
            tracer.instant(
                0,
                TraceEventKind::Fallback {
                    from: from.ladder_index(),
                    to: from.ladder_index() + 1,
                },
                ts,
            );
        }
        downgrades.push(Downgrade { from, reason });
    };

    let blocking = match plan {
        Ok(p) => Some(Blocking35::new(
            p.dim_xy.clamp(1, dim.nx.max(1)),
            p.dim_xy.clamp(1, dim.ny.max(1)),
            p.dim_t.max(1),
        )),
        Err(e) => {
            // Planner rejection disqualifies both temporal-blocking rungs.
            downgrade(Rung::Parallel35D, ExecError::Plan(e), opts.log);
            downgrade(Rung::Serial35D, ExecError::Plan(e), opts.log);
            None
        }
    };

    // Marks the recovery once a rung serves a request that saw an earlier
    // team quarantine on the way down the ladder.
    let heal_mark = |quarantined: bool| {
        if quarantined {
            if let Some(ts) = tracer.now_ns() {
                tracer.instant(0, TraceEventKind::Heal { tid: 0 }, ts);
            }
        }
    };

    if let Some(b) = blocking {
        for (rung, threads, deadline) in [
            (Rung::Parallel35D, opts.threads.max(1), opts.deadline),
            (Rung::Serial35D, 1, None),
        ] {
            let team = ThreadTeam::new(threads);
            let instr = Instrument::disabled();
            match try_parallel35d_sweep_traced(
                kernel, grids, steps, b, &team, deadline, &instr, tracer,
            ) {
                Ok(stats) => match finite_ok(grids, opts) {
                    Ok(()) => {
                        heal_mark(quarantined);
                        return Ok(RunReport {
                            rung,
                            stats,
                            downgrades,
                        });
                    }
                    Err(e) => {
                        downgrade(rung, e, opts.log);
                        restore(grids, &snapshot);
                    }
                },
                Err(e) => {
                    downgrade(rung, e, opts.log);
                    restore(grids, &snapshot);
                }
            }
            if team.is_quarantined() {
                // The failed run left a stalled generation behind; the
                // team object is dropped here, but the event records that
                // this request ran through a quarantine.
                quarantined = true;
                if let Some(ts) = tracer.now_ns() {
                    tracer.instant(0, TraceEventKind::Quarantine { tid: 0 }, ts);
                }
            }
        }
    }

    // 2.5-D spatial blocking: no thread team, no temporal blocking. Tile
    // edges come from the plan when there is one; otherwise fall back to
    // whole-plane tiles (always valid, degenerate-but-correct blocking).
    let (tx, ty) = match plan {
        Ok(p) => (
            p.dim_xy.clamp(1, dim.nx.max(1)),
            p.dim_xy.clamp(1, dim.ny.max(1)),
        ),
        Err(_) => (dim.nx.max(1), dim.ny.max(1)),
    };
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        blocked25d_sweep(kernel, grids, steps, tx, ty)
    }));
    match attempt {
        Ok(stats) => match finite_ok(grids, opts) {
            Ok(()) => {
                heal_mark(quarantined);
                return Ok(RunReport {
                    rung: Rung::Blocked25D,
                    stats,
                    downgrades,
                });
            }
            Err(e) => {
                downgrade(Rung::Blocked25D, e, opts.log);
                restore(grids, &snapshot);
            }
        },
        Err(_) => {
            downgrade(
                Rung::Blocked25D,
                ExecError::Sync(SyncError::TeamPanicked { generation: 0 }),
                opts.log,
            );
            restore(grids, &snapshot);
        }
    }

    // Last rung: the scalar reference. If even this produces non-finite
    // values the kernel itself is numerically broken — that is not
    // recoverable by falling further, so it surfaces as `Err`.
    let stats = reference_sweep(kernel, grids, steps);
    finite_ok(grids, opts)?;
    heal_mark(quarantined);
    Ok(RunReport {
        rung: Rung::Reference,
        stats,
        downgrades,
    })
}

fn finite_ok<T: Real>(grids: &DoubleGrid<T>, opts: &RunOptions) -> Result<(), ExecError> {
    if opts.verify_finite {
        check_finite(grids.src())
    } else {
        Ok(())
    }
}

/// Rolls both buffers back to the pre-attempt state so the next rung sees
/// exactly the input the failed rung saw (the bit-identical guarantee).
fn restore<T: Real>(grids: &mut DoubleGrid<T>, snapshot: &Grid3<T>) {
    *grids = DoubleGrid::from_initial(snapshot.clone());
}
