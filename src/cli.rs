//! Option parsing for the `threefive` binary.
//!
//! Hand-rolled `--key value` parsing (the container build is offline, so
//! no clap), with two properties the original ad-hoc loop lacked:
//!
//! * a **valueless flag never swallows the next option**: in
//!   `--verbose --n 64` the token `--n` starts a new key, so `--verbose`
//!   becomes a boolean `"true"` and `--n` keeps its `64` — previously
//!   `--verbose` consumed `--n` as its value and `64` was silently lost;
//! * an **unparseable value is a diagnosed error**, not a silent fallback
//!   to the default: `--n abc` surfaces as
//!   [`CliError::InvalidValue`] naming the flag, and the binary exits
//!   nonzero.

use std::collections::HashMap;
use std::fmt;

/// Errors produced while interpreting command-line options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// A `--flag value` pair whose value failed to parse as the expected
    /// type.
    InvalidValue {
        /// The offending flag, without the `--` prefix.
        flag: String,
        /// The value as given.
        value: String,
    },
    /// A flag the subcommand does not define (see [`ensure_known`]) — a
    /// typo like `--deadlien` is diagnosed, never silently ignored.
    UnknownFlag {
        /// The offending flag, without the `--` prefix.
        flag: String,
        /// The flags the subcommand accepts.
        expected: Vec<&'static str>,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::InvalidValue { flag, value } => {
                write!(f, "invalid value '{value}' for --{flag}")
            }
            CliError::UnknownFlag { flag, expected } => {
                write!(f, "unknown flag --{flag} (expected ")?;
                for (i, e) in expected.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "--{e}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Parses `--key value` pairs into a map.
///
/// A `--key` followed by another `--`-prefixed token (or by nothing) is a
/// boolean flag and maps to `"true"`. Tokens that are not `--`-prefixed
/// and not consumed as values are ignored.
pub fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let val = match args.get(i + 1) {
                // A following `--token` starts a new key; the current
                // flag is valueless. (A bare negative number like `-0.5`
                // is still accepted as a value.)
                Some(next) if !next.starts_with("--") => {
                    i += 1;
                    next.clone()
                }
                _ => "true".to_string(),
            };
            map.insert(key.to_string(), val);
        }
        i += 1;
    }
    map
}

/// Typed option lookup: absent ⇒ `default`, present-but-unparseable ⇒
/// [`CliError::InvalidValue`] naming the flag (never a silent default).
pub fn get<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::InvalidValue {
            flag: key.to_string(),
            value: v.clone(),
        }),
    }
}

/// String option lookup with a default.
pub fn getstr(opts: &HashMap<String, String>, key: &str, default: &str) -> String {
    opts.get(key)
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// Rejects any parsed flag not in `known` with
/// [`CliError::UnknownFlag`] naming both the flag and the accepted set.
/// Subcommands with a closed flag set call this right after
/// [`parse_opts`], so a misspelled option is an error instead of a
/// silently applied default.
pub fn ensure_known(
    opts: &HashMap<String, String>,
    known: &'static [&'static str],
) -> Result<(), CliError> {
    for flag in opts.keys() {
        if !known.contains(&flag.as_str()) {
            return Err(CliError::UnknownFlag {
                flag: flag.clone(),
                expected: known.to_vec(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn valueless_flag_does_not_swallow_next_option() {
        // The historical bug: `--verbose` consumed `--n` as its value and
        // `64` fell on the floor.
        let opts = parse_opts(&args(&["--verbose", "--n", "64"]));
        assert_eq!(opts.get("verbose").map(String::as_str), Some("true"));
        assert_eq!(opts.get("n").map(String::as_str), Some("64"));
        assert_eq!(get(&opts, "n", 0usize), Ok(64));
    }

    #[test]
    fn trailing_flag_is_boolean() {
        let opts = parse_opts(&args(&["--n", "32", "--fast"]));
        assert_eq!(opts.get("fast").map(String::as_str), Some("true"));
        assert_eq!(get(&opts, "n", 0usize), Ok(32));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let opts = parse_opts(&args(&["--alpha", "-0.5"]));
        assert_eq!(get(&opts, "alpha", 0.0f64), Ok(-0.5));
    }

    #[test]
    fn unparseable_value_is_an_error_naming_the_flag() {
        let opts = parse_opts(&args(&["--n", "abc"]));
        let err = get(&opts, "n", 128usize).unwrap_err();
        assert_eq!(
            err,
            CliError::InvalidValue {
                flag: "n".into(),
                value: "abc".into()
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("--n") && msg.contains("abc"), "{msg}");
    }

    #[test]
    fn absent_key_takes_default() {
        let opts = parse_opts(&args(&["--n", "16"]));
        assert_eq!(get(&opts, "steps", 8usize), Ok(8));
        assert_eq!(getstr(&opts, "variant", "35d"), "35d");
    }

    #[test]
    fn zero_parses_fine_and_is_left_to_domain_validation() {
        // `--dimt 0` parses as a number; rejecting it is the executors'
        // job (Blocking35::try_new), not the parser's.
        let opts = parse_opts(&args(&["--dimt", "0"]));
        assert_eq!(get(&opts, "dimt", 2usize), Ok(0));
    }

    #[test]
    fn unknown_flag_is_an_error_naming_flag_and_expectations() {
        let opts = parse_opts(&args(&["--deadlien", "500", "--n", "16"]));
        let err = ensure_known(&opts, &["n", "deadline"]).unwrap_err();
        match &err {
            CliError::UnknownFlag { flag, expected } => {
                assert_eq!(flag, "deadlien");
                assert_eq!(expected, &["n", "deadline"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let msg = err.to_string();
        assert!(
            msg.contains("--deadlien") && msg.contains("--deadline"),
            "{msg}"
        );
    }

    #[test]
    fn known_flags_pass_ensure_known() {
        let opts = parse_opts(&args(&["--n", "16", "--chaos"]));
        assert_eq!(ensure_known(&opts, &["n", "chaos", "steps"]), Ok(()));
    }

    #[test]
    fn consecutive_boolean_flags() {
        let opts = parse_opts(&args(&["--a", "--b", "--c", "7"]));
        assert_eq!(opts.get("a").map(String::as_str), Some("true"));
        assert_eq!(opts.get("b").map(String::as_str), Some("true"));
        assert_eq!(get(&opts, "c", 0i32), Ok(7));
    }
}
