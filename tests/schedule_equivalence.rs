//! Cross-schedule equivalence: every temporal-blocking schedule behind
//! the unified engine — the paper's 3.5-D lag schedule, the shared-cache
//! wavefront, and the wavefront-diamond — must produce results
//! bit-identical to the scalar reference, for every kernel the engine
//! runs, across team sizes, radii and non-divisible tiles. The schedule
//! only reorders *when* a (plane, level) is computed, never what is
//! computed, so the outputs must agree to the last bit.

use proptest::prelude::*;
use threefive::lbm::scenarios;
use threefive::prelude::*;

fn seeded_grid(dim: Dim3, seed: u64) -> Grid3<f32> {
    Grid3::from_fn(dim, |x, y, z| {
        let h = x
            .wrapping_mul(0x9E37)
            .wrapping_add(y.wrapping_mul(0x79B9))
            .wrapping_add(z.wrapping_mul(0x85EB))
            .wrapping_add(seed as usize);
        ((h % 97) as f32) * 0.02 - 1.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// 7-point stencil: all three schedules vs the reference, serial and
    /// parallel, on random shapes and non-divisible tiles.
    #[test]
    fn every_schedule_matches_the_stencil_reference(
        nx in 5usize..18,
        ny in 5usize..18,
        nz in 5usize..15,
        tile_x in 2usize..13,
        tile_y in 2usize..13,
        dim_t in 1usize..5,
        steps in 1usize..6,
        team_pick in 0usize..3,
        seed in 0u64..1000,
    ) {
        let dim = Dim3::new(nx, ny, nz);
        let kernel = SevenPoint::<f32>::new(0.3, 0.1);
        let init = seeded_grid(dim, seed);
        let mut want = DoubleGrid::from_initial(init.clone());
        reference_sweep(&kernel, &mut want, steps);

        let threads = [1usize, 2, 4][team_pick];
        let team = ThreadTeam::new(threads);
        for schedule in ScheduleKind::ALL {
            let b = Blocking35::new(tile_x, tile_y, dim_t).with_schedule(schedule);
            let mut got = DoubleGrid::from_initial(init.clone());
            try_parallel35d_sweep(&kernel, &mut got, steps, b, &team, None, &Observer::disabled())
                .expect("engine sweep runs");
            prop_assert_eq!(
                got.src().as_slice(),
                want.src().as_slice(),
                "schedule {} diverged ({threads} threads)",
                schedule
            );
        }
    }

    /// Higher radii R = 2, 3: the schedules' lag/ring formulas differ the
    /// most here (wavefront lag (R+1)(t−1) vs lag35 2R(t−1); diamond ring
    /// 2(4+R) slots), so a wrong formula shows up as a bit divergence.
    #[test]
    fn every_schedule_matches_the_star_reference_at_higher_radius(
        r in 2usize..4,
        n in 9usize..16,
        tile in 4usize..12,
        dim_t in 1usize..4,
        steps in 1usize..4,
        team_pick in 0usize..3,
        seed in 0u64..1000,
    ) {
        let dim = Dim3::cube(n);
        let kernel = GenericStar::<f32>::smoothing(r);
        let init = seeded_grid(dim, seed);
        let mut want = DoubleGrid::from_initial(init.clone());
        reference_sweep(&kernel, &mut want, steps);

        let threads = [1usize, 2, 4][team_pick];
        let team = ThreadTeam::new(threads);
        for schedule in ScheduleKind::ALL {
            let b = Blocking35::new(tile, tile, dim_t).with_schedule(schedule);
            let mut got = DoubleGrid::from_initial(init.clone());
            try_parallel35d_sweep(&kernel, &mut got, steps, b, &team, None, &Observer::disabled())
                .expect("engine sweep runs");
            prop_assert_eq!(
                got.src().as_slice(),
                want.src().as_slice(),
                "schedule {} diverged (R={}, {} threads)",
                schedule,
                r,
                threads
            );
        }
    }

    /// LBM rides the same engine: each schedule must reproduce the naive
    /// sweep bit-exactly on both closed-box and lid-driven scenarios.
    #[test]
    fn every_schedule_matches_the_lbm_reference(
        n in 6usize..13,
        tile in 3usize..12,
        dim_t in 1usize..4,
        steps in 1usize..5,
        lid in 0u8..2,
        team_pick in 0usize..3,
    ) {
        let dim = Dim3::cube(n);
        let build = || -> Lattice<f32> {
            if lid == 0 {
                scenarios::closed_box(dim, 1.25)
            } else {
                scenarios::lid_driven_cavity(dim, 1.25, 0.05)
            }
        };
        let mut want = build();
        lbm_naive_sweep(&mut want, steps, LbmMode::Simd, None);

        let threads = [1usize, 2, 4][team_pick];
        let team = ThreadTeam::new(threads);
        for schedule in ScheduleKind::ALL {
            let b = LbmBlocking::new(tile, tile, dim_t).with_schedule(schedule);
            let mut got = build();
            try_lbm35d_sweep(&mut got, steps, b, Some(&team), None, &Observer::disabled())
                .expect("lbm sweep runs");
            for q in 0..19 {
                prop_assert_eq!(
                    want.src().comp(q),
                    got.src().comp(q),
                    "schedule {} diverged at component {} ({} threads)",
                    schedule,
                    q,
                    threads
                );
            }
        }
    }
}

/// A tuned plan carrying a non-default schedule executes through the
/// graceful-degradation ladder bit-identically — the path `run`/`serve`
/// take when `TUNE.json` persists a wavefront or diamond winner.
#[test]
fn run_plan_executes_every_schedule_bit_identically() {
    let dim = Dim3::cube(12);
    let kernel = SevenPoint::<f32>::heat(0.125);
    let init = seeded_grid(dim, 7);
    let mut want = DoubleGrid::from_initial(init.clone());
    reference_sweep(&kernel, &mut want, 4);

    let plan = plan_35d_forced(0.5, 2, 4 << 20, 4, 1).expect("plan fits");
    for schedule in ScheduleKind::ALL {
        let opts = RunOptions {
            threads: 2,
            log: false,
            schedule,
            ..RunOptions::default()
        };
        let mut got = DoubleGrid::from_initial(init.clone());
        let report = run_plan(&kernel, &mut got, 4, Ok(plan), &opts).expect("ladder serves");
        assert_eq!(report.downgrades.len(), 0, "schedule {schedule} downgraded");
        assert_eq!(
            got.src().as_slice(),
            want.src().as_slice(),
            "schedule {schedule} diverged through the ladder"
        );
    }
}
