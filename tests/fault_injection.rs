//! End-to-end fault-tolerance suite: injected worker panics, stalls, and
//! numerical corruption must surface as typed errors in bounded time —
//! never as hangs — and the executors must stay usable afterwards.
//!
//! The fault harness ([`threefive::core::faults`]) is process-global, so
//! every test in this binary serializes through one mutex; the injected
//! fault of one test must not be claimed by the sweep of another.

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use threefive::core::exec::{reference_sweep, try_parallel35d_sweep, Blocking35};
use threefive::core::faults::{self, FaultKind, FaultPlan};
use threefive::core::verify::verification_grid;
use threefive::core::{ExecError, PlanError, SevenPoint};
use threefive::grid::{Dim3, DoubleGrid};
use threefive::sync::{Observer, SyncError, ThreadTeam};
use threefive::{run_plan, RunOptions, Rung};

static HARNESS: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    // A poisoned mutex just means an earlier test failed; the harness
    // state itself is disarmed by FaultGuard's drop during that unwind.
    HARNESS.lock().unwrap_or_else(|e| e.into_inner())
}

fn problem(n: usize) -> DoubleGrid<f32> {
    DoubleGrid::from_initial(verification_grid(Dim3::cube(n), 42))
}

fn reference_result(n: usize, steps: usize) -> DoubleGrid<f32> {
    let k = SevenPoint::new(0.3f32, 0.1);
    let mut g = problem(n);
    reference_sweep(&k, &mut g, steps);
    g
}

/// An injected worker panic must surface as `Err(TeamPanicked)` — with no
/// deadlock — and the same team must produce bit-exact results right after.
#[test]
fn injected_panic_surfaces_as_error_and_team_recovers() {
    let _h = serial();
    let k = SevenPoint::new(0.3f32, 0.1);
    let team = ThreadTeam::new(4);
    let b = Blocking35::new(6, 6, 2);

    let t0 = Instant::now();
    let err = {
        let _fault = faults::inject(FaultPlan {
            tid: 1,
            step: 2,
            kind: FaultKind::Panic,
        });
        let mut g = problem(12);
        try_parallel35d_sweep(
            &k,
            &mut g,
            4,
            b,
            &team,
            Some(Duration::from_secs(5)),
            &Observer::disabled(),
        )
        .unwrap_err()
    };
    assert!(
        matches!(err, ExecError::Sync(SyncError::TeamPanicked { .. })),
        "wrong error: {err:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "panic must drain well within the watchdog deadline"
    );

    // Same team, fault disarmed: bit-exact results.
    let mut g = problem(12);
    try_parallel35d_sweep(
        &k,
        &mut g,
        4,
        b,
        &team,
        Some(Duration::from_secs(5)),
        &Observer::disabled(),
    )
    .unwrap();
    assert_eq!(g.src().as_slice(), reference_result(12, 4).src().as_slice());
}

/// A stalled worker must trip the barrier watchdog: healthy members drain
/// with `BarrierTimeout` instead of spinning forever, and once the
/// straggler's sleep ends the team is reusable.
#[test]
fn injected_stall_trips_watchdog_without_hanging() {
    let _h = serial();
    let k = SevenPoint::new(0.3f32, 0.1);
    let team = ThreadTeam::new(3);
    let b = Blocking35::new(6, 6, 2);

    let t0 = Instant::now();
    let err = {
        let _fault = faults::inject(FaultPlan {
            tid: 2,
            step: 1,
            kind: FaultKind::Stall(Duration::from_millis(400)),
        });
        let mut g = problem(12);
        try_parallel35d_sweep(
            &k,
            &mut g,
            4,
            b,
            &team,
            Some(Duration::from_millis(50)),
            &Observer::disabled(),
        )
        .unwrap_err()
    };
    assert!(
        matches!(
            err,
            ExecError::Sync(SyncError::BarrierTimeout { .. } | SyncError::BarrierPoisoned)
        ),
        "wrong error: {err:?}"
    );
    // Bounded by the stall length (the borrowed closure must drain), far
    // under "forever".
    assert!(t0.elapsed() < Duration::from_secs(10), "no deadlock");

    let mut g = problem(12);
    try_parallel35d_sweep(
        &k,
        &mut g,
        4,
        b,
        &team,
        Some(Duration::from_secs(5)),
        &Observer::disabled(),
    )
    .unwrap();
    assert_eq!(g.src().as_slice(), reference_result(12, 4).src().as_slice());
}

/// The caller (member 0) panicking is also caught and typed.
#[test]
fn injected_caller_panic_is_reported() {
    let _h = serial();
    let k = SevenPoint::new(0.3f32, 0.1);
    let team = ThreadTeam::new(2);
    let _fault = faults::inject(FaultPlan {
        tid: 0,
        step: 0,
        kind: FaultKind::Panic,
    });
    let mut g = problem(10);
    let err = try_parallel35d_sweep(
        &k,
        &mut g,
        2,
        Blocking35::new(5, 5, 2),
        &team,
        Some(Duration::from_secs(5)),
        &Observer::disabled(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        ExecError::Sync(SyncError::TeamPanicked { .. })
    ));
}

/// Non-finite input is rejected up front with the first offending
/// coordinate, before any executor runs.
#[test]
fn nan_input_is_rejected_with_coordinates() {
    let _h = serial();
    let k = SevenPoint::new(0.3f32, 0.1);
    let mut g = problem(10);
    let initial = g.src().clone();
    {
        let (src_dirty, _) = {
            // Corrupt one plane of the source grid.
            let mut corrupted = initial.clone();
            faults::corrupt_plane(&mut corrupted, 3);
            (corrupted, ())
        };
        g = DoubleGrid::from_initial(src_dirty);
    }
    let machine = threefive::machine::core_i7();
    let traffic = threefive::machine::seven_point_traffic();
    let plan = threefive::core::plan_35d(
        traffic.gamma(threefive::machine::Precision::Sp),
        machine.big_gamma(threefive::machine::Precision::Sp),
        machine.fast_storage_bytes,
        4,
        1,
    );
    let opts = RunOptions {
        threads: 2,
        log: false,
        ..RunOptions::default()
    };
    let err = run_plan(&k, &mut g, 2, plan, &opts).unwrap_err();
    match err {
        ExecError::NonFinite { at, value } => {
            assert_eq!(at.2, 3, "first bad coordinate must be on plane z=3");
            assert!(value.is_nan());
        }
        other => panic!("wrong error: {other}"),
    }
}

/// Planner rejection walks the ladder to 2.5-D blocking, and the result is
/// bit-identical to the reference sweep.
#[test]
fn plan_rejection_falls_back_bit_identically() {
    let _h = serial();
    let k = SevenPoint::new(0.3f32, 0.1);
    let mut g = problem(12);
    let opts = RunOptions {
        threads: 2,
        log: false,
        ..RunOptions::default()
    };
    let report = run_plan(
        &k,
        &mut g,
        3,
        Err(PlanError::AlreadyComputeBound {
            gamma: 0.2,
            big_gamma: 0.3,
        }),
        &opts,
    )
    .unwrap();
    assert_eq!(report.rung, Rung::Blocked25D);
    assert_eq!(report.downgrades.len(), 2, "both 3.5-D rungs skipped");
    assert_eq!(g.src().as_slice(), reference_result(12, 3).src().as_slice());
}

/// A fault during the parallel rung downgrades to the serial rung; the
/// rollback keeps the final grid bit-identical to the reference.
#[test]
fn runtime_fault_downgrades_and_stays_bit_identical() {
    let _h = serial();
    let k = SevenPoint::new(0.3f32, 0.1);
    let mut g = problem(12);
    let plan = Ok(threefive::core::Plan35D {
        radius: 1,
        dim_t: 2,
        dim_xy: 6,
        kappa: 1.5,
        buffer_bytes: 0,
        effective_gamma: 0.1,
    });
    let opts = RunOptions {
        threads: 3,
        deadline: Some(Duration::from_secs(5)),
        verify_finite: true,
        log: false,
        ..RunOptions::default()
    };
    let report = {
        // tid 1 only exists on the parallel rung (serial teams have just
        // the caller), so exactly the first rung fails.
        let _fault = faults::inject(FaultPlan {
            tid: 1,
            step: 2,
            kind: FaultKind::Panic,
        });
        run_plan(&k, &mut g, 3, plan, &opts).unwrap()
    };
    assert_eq!(report.rung, Rung::Serial35D, "one downgrade taken");
    assert_eq!(report.downgrades.len(), 1);
    assert_eq!(report.downgrades[0].from, Rung::Parallel35D);
    assert!(matches!(
        report.downgrades[0].reason,
        ExecError::Sync(SyncError::TeamPanicked { .. })
    ));
    assert_eq!(g.src().as_slice(), reference_result(12, 3).src().as_slice());
}

/// Healthy path: the first rung serves the request, no downgrades, still
/// bit-identical.
#[test]
fn healthy_run_uses_parallel_rung() {
    let _h = serial();
    let k = SevenPoint::new(0.3f32, 0.1);
    let mut g = problem(12);
    let plan = Ok(threefive::core::Plan35D {
        radius: 1,
        dim_t: 2,
        dim_xy: 6,
        kappa: 1.5,
        buffer_bytes: 0,
        effective_gamma: 0.1,
    });
    let opts = RunOptions {
        threads: 4,
        log: false,
        ..RunOptions::default()
    };
    let report = run_plan(&k, &mut g, 4, plan, &opts).unwrap();
    assert_eq!(report.rung, Rung::Parallel35D);
    assert!(report.downgrades.is_empty());
    assert_eq!(g.src().as_slice(), reference_result(12, 4).src().as_slice());
}

/// `solve_steady`'s typed variant: zero check interval is an error, not a
/// panic, and an injected fault surfaces through it too.
#[test]
fn try_solve_steady_propagates_typed_errors() {
    let _h = serial();
    let k = SevenPoint::<f32>::heat(1.0 / 6.0);
    let mut g = problem(10);
    let err = threefive::core::try_solve_steady(
        &k,
        &mut g,
        Blocking35::new(10, 10, 2),
        None,
        1e-6,
        100,
        0,
        None,
    )
    .unwrap_err();
    assert_eq!(err, ExecError::ZeroCheckInterval);

    let team = ThreadTeam::new(3);
    let _fault = faults::inject(FaultPlan {
        tid: 2,
        step: 1,
        kind: FaultKind::Panic,
    });
    let err = threefive::core::try_solve_steady(
        &k,
        &mut g,
        Blocking35::new(10, 10, 2),
        Some(&team),
        1e-6,
        100,
        10,
        Some(Duration::from_secs(5)),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        ExecError::Sync(SyncError::TeamPanicked { .. })
    ));
}

fn lbm_problem(n: usize) -> threefive::lbm::Lattice<f32> {
    threefive::lbm::scenarios::lid_driven_cavity(Dim3::cube(n), 1.15, 0.06)
}

fn lbm_reference(n: usize, steps: usize) -> threefive::lbm::Lattice<f32> {
    use threefive::lbm::{lbm_naive_sweep, LbmMode};
    let mut lat = lbm_problem(n);
    lbm_naive_sweep(&mut lat, steps, LbmMode::Simd, None);
    lat
}

fn assert_lbm_equal(a: &threefive::lbm::Lattice<f32>, b: &threefive::lbm::Lattice<f32>) {
    for q in 0..threefive::lbm::model::Q {
        assert_eq!(a.src().comp(q), b.src().comp(q), "distribution comp {q}");
    }
}

/// The LBM pipeline runs on the same engine, so the same injected panic
/// must surface as a typed error — and the team must recover.
#[test]
fn lbm_injected_panic_surfaces_as_typed_error() {
    use threefive::lbm::{try_lbm35d_sweep, LbmBlocking, LbmError};
    let _h = serial();
    let team = ThreadTeam::new(3);
    let b = LbmBlocking::new(6, 6, 2);
    let err = {
        let _fault = faults::inject(FaultPlan {
            tid: 1,
            step: 2,
            kind: FaultKind::Panic,
        });
        let mut lat = lbm_problem(12);
        try_lbm35d_sweep(
            &mut lat,
            4,
            b,
            Some(&team),
            Some(Duration::from_secs(5)),
            &Observer::disabled(),
        )
        .unwrap_err()
    };
    assert!(
        matches!(err, LbmError::Sync(SyncError::TeamPanicked { .. })),
        "wrong error: {err:?}"
    );
    // Same team, fault disarmed: bit-exact results.
    let mut lat = lbm_problem(12);
    try_lbm35d_sweep(
        &mut lat,
        4,
        b,
        Some(&team),
        Some(Duration::from_secs(5)),
        &Observer::disabled(),
    )
    .unwrap();
    assert_lbm_equal(&lat, &lbm_reference(12, 4));
}

/// A stalled LBM worker trips the same barrier watchdog in bounded time.
#[test]
fn lbm_injected_stall_trips_watchdog_without_hanging() {
    use threefive::lbm::{try_lbm35d_sweep, LbmBlocking, LbmError};
    let _h = serial();
    let team = ThreadTeam::new(3);
    let t0 = Instant::now();
    let err = {
        let _fault = faults::inject(FaultPlan {
            tid: 2,
            step: 1,
            kind: FaultKind::Stall(Duration::from_millis(400)),
        });
        let mut lat = lbm_problem(12);
        try_lbm35d_sweep(
            &mut lat,
            4,
            LbmBlocking::new(6, 6, 2),
            Some(&team),
            Some(Duration::from_millis(50)),
            &Observer::disabled(),
        )
        .unwrap_err()
    };
    assert!(
        matches!(
            err,
            LbmError::Sync(SyncError::BarrierTimeout { .. } | SyncError::BarrierPoisoned)
        ),
        "wrong error: {err:?}"
    );
    assert!(t0.elapsed() < Duration::from_secs(10), "no deadlock");
}

/// A fault during the parallel LBM rung downgrades to the serial rung with
/// a bit-identical rollback — the lattice counterpart of
/// `runtime_fault_downgrades_and_stays_bit_identical`.
#[test]
fn lbm_runtime_fault_downgrades_and_stays_bit_identical() {
    use threefive::lbm::{LbmBlocking, LbmError};
    use threefive::{run_lbm_plan, LbmRung};
    let _h = serial();
    let mut lat = lbm_problem(12);
    let opts = RunOptions {
        threads: 3,
        deadline: Some(Duration::from_secs(5)),
        verify_finite: true,
        log: false,
        ..RunOptions::default()
    };
    let report = {
        // tid 1 only exists on the parallel rung (serial teams have just
        // the caller), so exactly the first rung fails.
        let _fault = faults::inject(FaultPlan {
            tid: 1,
            step: 2,
            kind: FaultKind::Panic,
        });
        run_lbm_plan(
            &mut lat,
            3,
            LbmBlocking::new(6, 6, 2),
            &opts,
            &Observer::disabled(),
        )
        .unwrap()
    };
    assert_eq!(report.rung, LbmRung::Serial35D, "one downgrade taken");
    assert_eq!(report.downgrades.len(), 1);
    assert_eq!(report.downgrades[0].from, LbmRung::Parallel35D);
    assert!(matches!(
        report.downgrades[0].reason,
        LbmError::Sync(SyncError::TeamPanicked { .. })
    ));
    assert_lbm_equal(&lat, &lbm_reference(12, 3));
}

/// Healthy LBM path: the parallel rung serves, no downgrades, bit-exact.
#[test]
fn lbm_healthy_run_uses_parallel_rung() {
    use threefive::lbm::LbmBlocking;
    use threefive::{run_lbm_plan, LbmRung};
    let _h = serial();
    let mut lat = lbm_problem(12);
    let opts = RunOptions {
        threads: 3,
        log: false,
        ..RunOptions::default()
    };
    let report = run_lbm_plan(
        &mut lat,
        4,
        LbmBlocking::new(6, 6, 2),
        &opts,
        &Observer::disabled(),
    )
    .unwrap();
    assert_eq!(report.rung, LbmRung::Parallel35D);
    assert!(report.downgrades.is_empty());
    assert_lbm_equal(&lat, &lbm_reference(12, 4));
}
