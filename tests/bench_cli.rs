//! End-to-end tests of the `threefive` binary: option parsing, error
//! exits, and the `bench` subcommand's machine-readable output.

use std::path::PathBuf;
use std::process::{Command, Output};

use threefive::bench::json::Json;
use threefive::bench::report::{BenchReport, BENCH_SCHEMA_VERSION};

fn threefive(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_threefive"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("threefive_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn run_with_zero_dimt_exits_cleanly_with_typed_error() {
    let out = threefive(&["run", "--n", "16", "--steps", "1", "--dimt", "0"]);
    assert!(!out.status.success(), "must exit nonzero");
    let err = stderr(&out);
    assert!(
        err.contains("dimT=0") || err.contains("dim_t"),
        "names the bad parameter: {err}"
    );
    assert!(!err.contains("panicked"), "no panic backtrace: {err}");
}

#[test]
fn lbm_with_zero_dimt_exits_cleanly_with_typed_error() {
    let out = threefive(&["lbm", "--n", "12", "--steps", "1", "--dimt", "0"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(!err.contains("panicked"), "no panic backtrace: {err}");
}

#[test]
fn unparseable_value_names_the_flag_and_exits_nonzero() {
    let out = threefive(&["run", "--n", "abc"]);
    assert!(!out.status.success(), "must not silently default --n");
    let err = stderr(&out);
    assert!(err.contains("--n") && err.contains("abc"), "{err}");
}

#[test]
fn valueless_flag_does_not_swallow_the_next_option() {
    // Before the parser fix, `--verbose` consumed `--n` and the run
    // silently used the 128³ default.
    let out = threefive(&["run", "--verbose", "--n", "24", "--steps", "1"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("24x24x24"),
        "the --n value must take effect: {}",
        stdout(&out)
    );
}

#[test]
fn run_reports_interior_mups_with_warmup() {
    let out = threefive(&["run", "--n", "20", "--steps", "2", "--variant", "35d"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("interior Mupdates/s"), "{text}");
    assert!(text.contains("after 1 warmup"), "{text}");
    assert!(text.contains("barrier-wait share"), "{text}");
}

#[test]
fn bench_writes_schema_versioned_reports_that_validate() {
    let dir = scratch_dir("bench_out");
    let out = threefive(&[
        "bench",
        "--n",
        "16",
        "--steps",
        "2",
        "--reps",
        "1",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    for (name, kind, expect_variants) in [
        ("BENCH_stencil.json", "stencil", 8usize),
        ("BENCH_lbm.json", "lbm", 4usize),
    ] {
        let path = dir.join(name);
        let text = std::fs::read_to_string(&path).expect("report written");
        let report = BenchReport::validate_str(&text).expect("schema-valid");
        assert_eq!(report.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(report.kind, kind);
        assert_eq!(report.entries.len(), expect_variants);
        for e in &report.entries {
            assert_eq!(e.grid, [16, 16, 16]);
            assert_eq!(e.steps, 2);
            assert!(e.mups > 0.0, "{}: positive MUPS", e.variant);
            assert!(e.median_secs > 0.0);
            assert!(e.modeled_dram_bytes > 0);
            // MUPS is defined over interior updates, never dim³.
            let implied = e.interior_updates as f64 / e.median_secs / 1e6;
            assert!(
                (e.mups - implied).abs() < 1e-6 * implied.max(1.0),
                "{}: mups {} vs interior-implied {}",
                e.variant,
                e.mups,
                implied
            );
        }

        // The binary's own validator accepts what it wrote.
        let out = threefive(&["bench", "--validate", path.to_str().unwrap()]);
        assert!(out.status.success(), "{}", stderr(&out));
        assert!(stdout(&out).contains("valid BENCH report"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_validate_names_a_missing_schema_field() {
    // The v1 validator's gap: deleting a required field (e.g. `kappa`)
    // still validated. v2 must exit nonzero and name the field.
    let dir = scratch_dir("bench_missing_field");
    let out = threefive(&[
        "bench",
        "--n",
        "12",
        "--steps",
        "1",
        "--reps",
        "1",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let path = dir.join("BENCH_stencil.json");
    let text = std::fs::read_to_string(&path).expect("report written");
    for field in ["kappa", "barrier_share", "telemetry"] {
        // Delete the key from every entry object, then re-serialize.
        let mut doc = Json::parse(&text).expect("report parses");
        let Json::Obj(top) = &mut doc else {
            panic!("report is an object")
        };
        let entries = top
            .iter_mut()
            .find(|(k, _)| k == "entries")
            .map(|(_, v)| v)
            .expect("entries key");
        let Json::Arr(items) = entries else {
            panic!("entries is an array")
        };
        for item in items {
            let Json::Obj(fields) = item else {
                panic!("entry is an object")
            };
            fields.retain(|(k, _)| k != field);
        }
        let bad = dir.join(format!("BENCH_missing_{field}.json"));
        std::fs::write(&bad, doc.to_string()).unwrap();

        let out = threefive(&["bench", "--validate", bad.to_str().unwrap()]);
        assert!(
            !out.status.success(),
            "missing '{field}' must fail validation"
        );
        let err = stderr(&out);
        assert!(
            err.contains(field),
            "error must name the missing field '{field}': {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_subcommand_writes_a_valid_perfetto_trace() {
    let dir = scratch_dir("trace_out");
    let out = threefive(&[
        "trace",
        "--nx",
        "16",
        "--ny",
        "16",
        "--nz",
        "16",
        "--dimt",
        "2",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("wrote"), "{text}");
    assert!(text.contains("per-thread timeline"), "{text}");
    assert!(text.contains("roofline_attainment_pct"), "{text}");

    let path = dir.join("TRACE_stencil.json");
    assert!(path.exists(), "trace file written");

    // The binary's own validator accepts what it wrote.
    let out = threefive(&["trace", "--validate", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));

    // And a corrupted trace is rejected.
    let garbled = dir.join("TRACE_bad.json");
    std::fs::write(&garbled, "{\"traceEvents\": [{\"ph\": \"X\"}]}").unwrap();
    let out = threefive(&["trace", "--validate", garbled.to_str().unwrap()]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_validate_rejects_garbage() {
    let dir = scratch_dir("bench_bad");
    let path = dir.join("BENCH_bad.json");
    std::fs::write(&path, "{\"schema_version\": 999}").unwrap();
    let out = threefive(&["bench", "--validate", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("invalid BENCH report"),
        "{}",
        stderr(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}
