//! GPU-simulator ↔ CPU cross-validation: the SIMT kernels must agree
//! bit-exactly with the CPU executor ladder (which itself agrees with the
//! scalar reference), closing the loop across all three implementations.

use threefive::gpu::kernels::{
    naive_sweep, pipelined35_sweep, spatial_sweep, Pipe35Config, SevenPointGpu,
};
use threefive::gpu::Device;
use threefive::prelude::*;

const K: SevenPointGpu = SevenPointGpu {
    alpha: 0.4,
    beta: 0.1,
};

fn initial(dim: Dim3) -> Grid3<f32> {
    Grid3::from_fn(dim, |x, y, z| ((x * 11 + y * 5 + z * 3) % 19) as f32 * 0.15)
}

fn cpu_35d(dim: Dim3, steps: usize) -> Grid3<f32> {
    let kernel = SevenPoint::new(K.alpha, K.beta);
    let mut g = DoubleGrid::from_initial(initial(dim));
    let team = ThreadTeam::new(2);
    parallel35d_sweep(&kernel, &mut g, steps, Blocking35::new(16, 16, 2), &team);
    g.src().clone()
}

#[test]
fn gpu_pipeline_equals_cpu_parallel_pipeline() {
    // The strongest cross-check: two completely different 3.5-D
    // implementations (CPU plane rings + thread team vs GPU register
    // pipeline + SIMT phases) produce identical bits.
    let dim = Dim3::new(40, 28, 14);
    let dev = Device::gtx285();
    for steps in [2usize, 4] {
        let want = cpu_35d(dim, steps);
        let (got, _) = pipelined35_sweep(&dev, K, &initial(dim), steps, Pipe35Config::default());
        assert_eq!(got.as_slice(), want.as_slice(), "steps={steps}");
    }
}

#[test]
fn all_three_gpu_kernels_agree_with_each_other() {
    let dim = Dim3::new(37, 23, 11);
    let dev = Device::gtx285();
    let g = initial(dim);
    let steps = 2;
    let (a, _) = naive_sweep(&dev, K, &g, steps);
    let (b, _) = spatial_sweep(&dev, K, &g, steps);
    let (c, _) = pipelined35_sweep(&dev, K, &g, steps, Pipe35Config::default());
    assert_eq!(a.as_slice(), b.as_slice());
    assert_eq!(b.as_slice(), c.as_slice());
}

#[test]
fn gpu_tile_rows_parameter_does_not_change_results() {
    let dim = Dim3::new(44, 30, 10);
    let dev = Device::gtx285();
    let g = initial(dim);
    let base = {
        let (out, _) = pipelined35_sweep(&dev, K, &g, 2, Pipe35Config::default());
        out
    };
    for ty in [6usize, 8, 16] {
        let cfg = Pipe35Config {
            ty_loaded: ty,
            overhead_per_update: 6.0,
        };
        let (out, _) = pipelined35_sweep(&dev, K, &g, 2, cfg);
        assert_eq!(out.as_slice(), base.as_slice(), "ty_loaded={ty}");
    }
}

#[test]
fn gpu_traffic_ordering_matches_the_paper() {
    // Reads per committed point must strictly decrease down the ladder.
    let dim = Dim3::new(96, 64, 20);
    let dev = Device::gtx285();
    let g = initial(dim);
    let (_, n) = naive_sweep(&dev, K, &g, 2);
    let (_, s) = spatial_sweep(&dev, K, &g, 2);
    let (_, p) = pipelined35_sweep(&dev, K, &g, 2, Pipe35Config::default());
    let per_point = |st: &threefive::gpu::KernelStats| st.gmem_bytes() as f64 / st.committed as f64;
    assert!(
        per_point(&n) > per_point(&s) && per_point(&s) > per_point(&p),
        "bytes/update must fall down the ladder: {} {} {}",
        per_point(&n),
        per_point(&s),
        per_point(&p)
    );
}

#[test]
fn shared_memory_budget_matches_paper_constraint() {
    // The 16 KB shared memory fits the 7-point pipeline easily but is the
    // reason LBM SP cannot be blocked (§VI-B): 19 components would need
    // 19x the exchange space of the scalar stencil.
    let dev = Device::gtx285();
    let scalar_exchange = 2 * 32 * 12 * 4; // two f32 exchange planes
    assert!(scalar_exchange <= dev.smem_bytes);
    let lbm_exchange = scalar_exchange * 19;
    assert!(
        lbm_exchange > dev.smem_bytes,
        "LBM exchange planes must exceed 16 KB ({lbm_exchange} B)"
    );
}
