//! Deterministic replay regression: the checked-in schedule traces
//! under `tests/data/` must re-execute step-for-step against the
//! current scenario catalog and reproduce their recorded failures.
//!
//! Each trace is a counterexample the model checker found against a
//! seeded mutant — the three here pin the `SpinBarrier` poison
//! edge cases (poison between generations, the last arriver poisoning,
//! a deadline racing arrival). If the scheduler's decision encoding,
//! the scenario catalog or the mutants drift, replay reports
//! divergence instead of silently exploring something else;
//! regenerate with:
//!
//! ```text
//! cargo run -p threefive-modelcheck --example record_traces -- tests/data
//! ```

use threefive::modelcheck::{replay, Budgets, ReplayOutcome, Trace};

/// The checked-in traces and the failure each must reproduce.
const REPLAYS: &[&str] = &[
    "replay_drop-poison-check.json",
    "replay_drop-poison-last-arriver.json",
    "replay_timeout-no-poison.json",
];

fn load(name: &str) -> Trace {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    Trace::parse(&text).unwrap_or_else(|e| panic!("{name}: invalid trace: {e}"))
}

#[test]
fn checked_in_barrier_poison_traces_replay_deterministically() {
    // Replays re-execute panics the checker catches; keep the default
    // hook from spraying backtraces over the test output.
    std::panic::set_hook(Box::new(|_| {}));
    for name in REPLAYS {
        let trace = load(name);
        // Replay twice: the second run must take the identical schedule,
        // which is what makes these regression tests deterministic.
        for round in 0..2 {
            match replay(&trace, Budgets::default().max_steps) {
                Ok(ReplayOutcome::Reproduced { kind, .. }) => {
                    assert_eq!(
                        kind, trace.failure_kind,
                        "{name} round {round}: wrong failure kind"
                    );
                }
                Ok(other) => panic!("{name} round {round}: did not reproduce: {other:?}"),
                Err(e) => panic!("{name} round {round}: replay error: {e}"),
            }
        }
    }
    let _ = std::panic::take_hook();
}

#[test]
fn checked_in_traces_cover_the_poison_edge_cases() {
    let models: Vec<String> = REPLAYS.iter().map(|n| load(n).model).collect();
    for expected in [
        "barrier-poison-mid",
        "barrier-last-arriver",
        "barrier-deadline-race",
    ] {
        assert!(
            models.iter().any(|m| m == expected),
            "no checked-in replay pins `{expected}` (have {models:?})"
        );
    }
}
