//! End-to-end tests of the multi-tenant solver service: admission,
//! bit-identical results over the wire, graceful shutdown under load, and
//! per-job fault isolation under chaos.
//!
//! Every test serializes on one mutex: the shutdown flag and the fault
//! injection plan are process-wide statics, so two daemons in one test
//! process would observe each other's state.

use std::io::{Read, Write};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use threefive::metrics::{validate_exposition, Level};
use threefive::serve::signal;
use threefive::serve::{
    AdmissionLimits, ChaosCmd, JobSpec, LbmScenario, Rejected, Response, ServeMetrics, Server,
    ServerConfig, ServiceClient, Workload,
};
use threefive::serve_runner::{reference_checksum, SolverRunner};
use threefive_bench::json::Json;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    signal::reset_for_test();
    guard
}

/// Binds a daemon on an ephemeral port and runs it on a background
/// thread. The join handle resolves to `run()`'s result once the daemon
/// has drained — all of its threads joined.
fn start_server(config: ServerConfig) -> (String, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config, std::sync::Arc::new(SolverRunner::new(false)))
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn connect(addr: &str) -> ServiceClient {
    let mut client = ServiceClient::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    client
}

fn spec(workload: Workload) -> JobSpec {
    JobSpec {
        workload,
        n: 12,
        steps: 3,
        dim_t: 2,
        tile: 12,
        deadline: Duration::from_secs(60),
        priority: 0,
    }
}

fn stat_u64(doc: &Json, key: &str) -> u64 {
    doc.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing {key}: {doc}"))
}

const MIXED: [Workload; 4] = [
    Workload::Stencil,
    Workload::Lbm(LbmScenario::ClosedBox),
    Workload::Lbm(LbmScenario::Cavity),
    Workload::Lbm(LbmScenario::Channel),
];

#[test]
fn solve_round_trip_is_bit_identical_and_counted() {
    let _guard = serial();
    let (addr, handle) = start_server(ServerConfig::default());
    let mut client = connect(&addr);
    client.ping().expect("ping");

    for workload in MIXED {
        let s = spec(workload);
        match client.solve(&s).expect("solve") {
            Response::Done { completed, .. } => {
                assert_eq!(
                    completed.checksum,
                    reference_checksum(&s),
                    "{workload} result must be bit-identical to the scalar reference"
                );
            }
            other => panic!("{workload}: unexpected response {other:?}"),
        }
    }

    // Admission control rejects with a typed reason, not a disconnect.
    let mut oversized = spec(Workload::Stencil);
    oversized.n = 129;
    match client.solve(&oversized).expect("solve oversized") {
        Response::Rejected(Rejected::GridTooLarge { cells, max_cells }) => {
            assert_eq!(cells, 129u64.pow(3));
            assert_eq!(max_cells, AdmissionLimits::default().max_cells);
        }
        other => panic!("unexpected response {other:?}"),
    }
    let mut bad = spec(Workload::Stencil);
    bad.dim_t = 0;
    assert!(matches!(
        client.solve(&bad).expect("solve bad plan"),
        Response::Rejected(Rejected::BadPlan { .. })
    ));

    let stats = client.stats().expect("stats");
    assert_eq!(stat_u64(&stats, "offered"), 6);
    assert_eq!(stat_u64(&stats, "accepted"), 4);
    assert_eq!(stat_u64(&stats, "completed"), 4);
    assert_eq!(stat_u64(&stats, "rejected"), 2);

    // The accounting identities are machine-checkable from this single
    // snapshot — the daemon evaluates them under the same lock that
    // updates the counters, and the raw fields must agree with it.
    assert_eq!(
        stats.get("identities_ok").and_then(Json::as_bool),
        Some(true),
        "identities violated: {stats}"
    );
    assert_eq!(
        stat_u64(&stats, "offered"),
        stat_u64(&stats, "accepted") + stat_u64(&stats, "rejected"),
        "{stats}"
    );
    assert_eq!(
        stat_u64(&stats, "accepted"),
        stat_u64(&stats, "completed")
            + stat_u64(&stats, "failed")
            + stat_u64(&stats, "timed_out")
            + stat_u64(&stats, "in_flight"),
        "{stats}"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

/// Tentpole: the live metrics plane end to end. One daemon with the
/// runner wired into the same registry, a plaintext `GET /metrics`
/// listener, mixed jobs through it, then every surface is scraped: the
/// protocol `metrics`/`events` commands, the HTTP exposition, and the
/// nested registry snapshot inside `stats` — all from one process, all
/// internally consistent.
#[test]
fn metrics_plane_exposes_histograms_events_and_identities() {
    let _guard = serial();
    let metrics = ServeMetrics::with_options(true, 256, None);
    let runner = SolverRunner::new(false).with_metrics(Arc::clone(&metrics));
    let server = Server::bind_with_metrics(
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
        Arc::new(runner),
        metrics,
    )
    .expect("bind ephemeral ports");
    let addr = server.local_addr().expect("local addr").to_string();
    let scrape_addr = server
        .metrics_local_addr()
        .expect("metrics listener bound")
        .to_string();
    let handle = thread::spawn(move || server.run());

    let mut client = connect(&addr);
    for workload in MIXED {
        let s = spec(workload);
        match client.solve(&s).expect("solve") {
            Response::Done { completed, .. } => {
                assert_eq!(completed.checksum, reference_checksum(&s));
            }
            other => panic!("{workload}: unexpected response {other:?}"),
        }
    }

    // Protocol scrape: the exposition passes the in-tree validator and
    // carries non-zero job histograms and per-rung/kernel counters.
    let expo = client.metrics_exposition().expect("metrics command");
    validate_exposition(&expo).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{expo}"));
    for needle in [
        "threefive_jobs_offered_total 4",
        "threefive_jobs_completed_total 4",
        "threefive_jobs_in_flight 0",
        "threefive_job_queue_wait_seconds_count 4",
        "threefive_job_exec_seconds_count 4",
        "threefive_job_latency_seconds_count 4",
        "threefive_jobs_by_kernel_total{kernel=\"stencil\"} 1",
        "threefive_engine_sweeps_total",
        "threefive_jobs_by_rung_total{rung=",
    ] {
        assert!(
            expo.contains(needle),
            "exposition missing {needle:?}:\n{expo}"
        );
    }

    // HTTP scrape: the plaintext listener serves the same document to
    // curl/Prometheus with nothing but a socket.
    let mut sock = std::net::TcpStream::connect(&scrape_addr).expect("connect scrape port");
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    sock.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("send request");
    let mut http = String::new();
    sock.read_to_string(&mut http).expect("read response");
    assert!(http.starts_with("HTTP/1.0 200 OK\r\n"), "{http}");
    let body = http.split("\r\n\r\n").nth(1).expect("header/body split");
    validate_exposition(body).unwrap_or_else(|e| panic!("HTTP exposition invalid: {e}\n{body}"));
    assert!(body.contains("threefive_jobs_completed_total 4"), "{body}");

    // The stats document nests the registry snapshot with quantiles, and
    // the identities hold at this scrape too.
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("identities_ok").and_then(Json::as_bool),
        Some(true),
        "{stats}"
    );
    let latency = stats
        .get("metrics")
        .and_then(|m| m.get("threefive_job_latency_seconds"))
        .expect("nested latency histogram");
    assert_eq!(stat_u64(latency, "count"), 4, "{latency}");
    assert!(
        latency.get("p50_ns").and_then(Json::as_f64).unwrap_or(0.0) > 0.0,
        "{latency}"
    );

    // The structured event log saw the lifecycle: server_started at
    // info, per-job admission at debug, per-job completion at info —
    // each stamped with a job id where one exists.
    let events = client.events(256, Level::Debug).expect("events command");
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(Json::as_str))
        .collect();
    assert!(kinds.contains(&"server_started"), "{kinds:?}");
    assert!(kinds.contains(&"job_admitted"), "{kinds:?}");
    assert!(kinds.contains(&"job_done"), "{kinds:?}");
    let done = events
        .iter()
        .find(|e| e.get("kind").and_then(Json::as_str) == Some("job_done"))
        .unwrap();
    assert!(
        done.get("job_id").and_then(Json::as_u64).is_some(),
        "{done}"
    );
    // Warn-level filtering drops the debug/info stream.
    let warns = client.events(256, Level::Warn).expect("filtered events");
    assert!(
        warns.iter().all(|e| matches!(
            e.get("level").and_then(Json::as_str),
            Some("warn" | "error")
        )),
        "{warns:?}"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

/// Satellite: a daemon under load that receives a shutdown request
/// drains every admitted job to a final answer, refuses new work with a
/// typed `ShuttingDown`, and exits cleanly with all threads joined.
#[test]
fn graceful_shutdown_under_load_drains_admitted_jobs() {
    let _guard = serial();
    let (addr, handle) = start_server(ServerConfig {
        teams: 1,
        threads_per_team: 2,
        dispatchers: 1,
        queue_capacity: 32,
        ..ServerConfig::default()
    });

    // Four tenants submit continuously until they see the drain refusal.
    let drain_requested = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut tenants = Vec::new();
    for t in 0..4usize {
        let addr = addr.clone();
        let drain_requested = std::sync::Arc::clone(&drain_requested);
        tenants.push(thread::spawn(move || {
            let mut client = connect(&addr);
            let mut answered = 0u64;
            let mut saw_drain = false;
            for k in 0..100 {
                let s = spec(MIXED[(t + k) % MIXED.len()]);
                match client.solve(&s) {
                    Ok(Response::Done { completed, .. }) => {
                        answered += 1;
                        assert_eq!(completed.checksum, reference_checksum(&s));
                    }
                    Ok(Response::Rejected(Rejected::ShuttingDown)) => {
                        saw_drain = true;
                        break;
                    }
                    Ok(Response::Rejected(Rejected::QueueFull { .. }))
                    | Ok(Response::Failed { .. }) => answered += 1,
                    Ok(other) => panic!("unexpected response {other:?}"),
                    Err(e) => {
                        // A closed socket is only acceptable once the
                        // daemon was asked to drain and may have already
                        // exited; before that it is a wire bug.
                        assert!(
                            drain_requested.load(std::sync::atomic::Ordering::SeqCst),
                            "request got no answer before the drain was requested: {e}"
                        );
                        saw_drain = true;
                        break;
                    }
                }
            }
            (answered, saw_drain)
        }));
    }

    // Let some jobs land, then ask for the drain mid-load.
    thread::sleep(Duration::from_millis(300));
    drain_requested.store(true, std::sync::atomic::Ordering::SeqCst);
    connect(&addr).shutdown().expect("shutdown request");

    let mut total_answered = 0;
    for t in tenants {
        let (answered, saw_drain) = t.join().expect("tenant thread");
        assert!(
            saw_drain,
            "every tenant must eventually observe the typed ShuttingDown refusal"
        );
        total_answered += answered;
    }
    assert!(total_answered > 0, "some jobs were admitted before drain");

    // run() returning Ok proves the drain completed and every dispatcher,
    // connection and writer thread was joined — nothing wedged.
    handle.join().expect("server thread").expect("clean exit");
}

/// Acceptance: ≥32 concurrent mixed jobs with fault injection armed
/// mid-load. Every accepted job must either return a checksum
/// bit-identical to the scalar reference or a typed error; the daemon
/// must not hang, and after the chaos stops the pool must heal back to
/// full capacity.
#[test]
fn chaos_isolation_keeps_results_bit_identical_and_pool_heals() {
    let _guard = serial();
    let (addr, handle) = start_server(ServerConfig {
        teams: 2,
        threads_per_team: 2,
        dispatchers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    });

    // References computed up front — all jobs share n/steps, so there are
    // exactly four distinct expected checksums.
    let expected: Vec<u64> = MIXED
        .iter()
        .map(|w| reference_checksum(&spec(*w)))
        .collect();

    // Chaos driver: keep re-arming faults (panic on worker 0, stall on
    // worker 1) inside the daemon while the tenants are loading it.
    let chaos_done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let chaos_handle = {
        let addr = addr.clone();
        let done = std::sync::Arc::clone(&chaos_done);
        thread::spawn(move || {
            let mut client = connect(&addr);
            let mut flip = false;
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                let cmd = if flip {
                    ChaosCmd::Stall {
                        tid: 1,
                        step: 2,
                        stall: Duration::from_millis(20),
                    }
                } else {
                    ChaosCmd::Panic { tid: 0, step: 1 }
                };
                flip = !flip;
                client.chaos(&cmd).expect("arm chaos");
                thread::sleep(Duration::from_millis(25));
            }
            client.chaos(&ChaosCmd::Off).expect("disarm chaos");
        })
    };

    // 8 tenants × 4 jobs = 32 concurrent mixed jobs under fault injection.
    let mut tenants = Vec::new();
    for t in 0..8usize {
        let addr = addr.clone();
        let expected = expected.clone();
        tenants.push(thread::spawn(move || {
            let mut client = connect(&addr);
            let mut done_jobs = 0u64;
            let mut typed_errors = 0u64;
            for k in 0..4 {
                let which = (t + k) % MIXED.len();
                let s = spec(MIXED[which]);
                match client.solve(&s).expect("every request gets an answer") {
                    Response::Done { completed, .. } => {
                        // The core guarantee: whatever rung survived the
                        // injected faults, the bits match the scalar
                        // reference — no cross-job corruption.
                        assert_eq!(
                            completed.checksum, expected[which],
                            "tenant {t} job {k} ({}) corrupted under chaos",
                            MIXED[which]
                        );
                        done_jobs += 1;
                    }
                    Response::Failed { .. } | Response::Rejected(_) => typed_errors += 1,
                    other => panic!("unexpected response {other:?}"),
                }
            }
            (done_jobs, typed_errors)
        }));
    }

    let mut done_jobs = 0;
    let mut typed_errors = 0;
    for t in tenants {
        let (d, e) = t.join().expect("tenant thread survived");
        done_jobs += d;
        typed_errors += e;
    }
    chaos_done.store(true, std::sync::atomic::Ordering::Relaxed);
    chaos_handle.join().expect("chaos thread");
    assert_eq!(done_jobs + typed_errors, 32, "all 32 jobs answered");
    assert!(
        done_jobs > 0,
        "the degradation ladder should complete jobs despite injected faults"
    );

    // With the faults disarmed the pool must heal back to full capacity:
    // quarantined teams drain their stragglers and return to idle.
    let mut client = connect(&addr);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = client.stats().expect("stats");
        let capacity = stat_u64(&stats, "pool_capacity");
        if stat_u64(&stats, "pool_quarantined") == 0 && stat_u64(&stats, "pool_idle") == capacity {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pool did not heal to full capacity: {stats}"
        );
        thread::sleep(Duration::from_millis(100));
    }

    // And a healed pool serves fresh jobs bit-identically.
    for (which, workload) in MIXED.iter().enumerate() {
        let s = spec(*workload);
        match client.solve(&s).expect("post-heal solve") {
            Response::Done { completed, .. } => assert_eq!(completed.checksum, expected[which]),
            other => panic!("post-heal {workload}: unexpected response {other:?}"),
        }
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}
