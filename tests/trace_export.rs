//! End-to-end tests of the observability pipeline: traced sweep →
//! Perfetto/Chrome-trace export → parse round-trip, plus the zero-cost
//! guarantee that a disabled tracer leaves sweep results bit-identical.

use proptest::prelude::*;
use threefive::bench::json::Json;
use threefive::bench::perfetto::{trace_to_chrome_json, validate_chrome_trace};
use threefive::prelude::*;

fn demo_grid(dim: Dim3, seed: usize) -> Grid3<f32> {
    Grid3::from_fn(dim, |x, y, z| {
        let h = x
            .wrapping_mul(0x9E37)
            .wrapping_add(y.wrapping_mul(0x79B9))
            .wrapping_add(z.wrapping_mul(0x85EB))
            .wrapping_add(seed);
        ((h % 89) as f32) * 0.02 - 0.8
    })
}

/// Runs a traced parallel 3.5-D sweep and returns the exported document.
fn traced_sweep_doc(threads: usize) -> Json {
    let dim = Dim3::cube(16);
    let kernel = SevenPoint::<f32>::heat(0.125);
    let mut grids = DoubleGrid::from_initial(demo_grid(dim, 7));
    let team = ThreadTeam::new(threads);
    let tracer = Tracer::enabled(threads);
    try_parallel35d_sweep(
        &kernel,
        &mut grids,
        4,
        Blocking35::new(16, 16, 2),
        &team,
        None,
        &Observer::with_tracer(&tracer),
    )
    .expect("traced sweep runs");
    trace_to_chrome_json(&tracer.snapshot(), "trace_export test")
}

#[test]
fn exported_trace_round_trips_through_the_parser() {
    let doc = traced_sweep_doc(2);
    let text = doc.to_string();
    let reparsed = Json::parse(&text).expect("exporter emits parseable JSON");
    let summary = validate_chrome_trace(&reparsed).expect("round-tripped trace validates");
    assert_eq!(summary.threads, 2);
    assert!(summary.spans > 0, "plane/barrier spans recorded");
    // dim_T=2 over 16 planes → 32 plane spans per thread, plus barriers.
    assert_eq!(
        summary.events,
        reparsed.get("traceEvents").unwrap().as_arr().unwrap().len() - 3
    );
}

#[test]
fn every_exported_event_carries_the_perfetto_required_keys() {
    let doc = traced_sweep_doc(2);
    let events = doc
        .get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents is an array");
    assert!(!events.is_empty());
    for e in events {
        for key in ["ph", "name", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing '{key}': {e}");
        }
        let ph = e.get("ph").unwrap().as_str().unwrap();
        match ph {
            "M" => continue, // metadata events carry args.name instead of ts
            "X" => {
                assert!(e.get("ts").unwrap().as_f64().is_some());
                assert!(e.get("dur").unwrap().as_f64().is_some());
            }
            "i" => {
                assert!(e.get("ts").unwrap().as_f64().is_some());
                assert_eq!(e.get("s").unwrap().as_str(), Some("t"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
}

#[test]
fn per_thread_timestamps_are_monotonic() {
    let doc = traced_sweep_doc(3);
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for e in events {
        if e.get("ph").unwrap().as_str() == Some("M") {
            continue;
        }
        let tid = e.get("tid").unwrap().as_u64().unwrap();
        let ts = e.get("ts").unwrap().as_f64().unwrap();
        if let Some(prev) = last_ts.get(&tid) {
            assert!(ts >= *prev, "tid {tid}: ts went backwards ({prev} -> {ts})");
        }
        last_ts.insert(tid, ts);
    }
    assert_eq!(last_ts.len(), 3, "all three threads emitted events");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The zero-cost guarantee: threading a *disabled* tracer through the
    /// traced executor never perturbs the numerics — results stay
    /// bit-identical to the untraced executor (which itself equals the
    /// scalar reference).
    #[test]
    fn disabled_tracing_leaves_sweeps_bit_identical(
        n in 6usize..16,
        tile in 3usize..18,
        dim_t in 1usize..4,
        steps in 1usize..6,
        threads in 1usize..4,
        seed in 0usize..500,
    ) {
        let dim = Dim3::cube(n);
        let kernel = SevenPoint::<f32>::new(0.3, 0.1);
        let init = demo_grid(dim, seed);

        let mut want = DoubleGrid::from_initial(init.clone());
        let team = ThreadTeam::new(threads);
        parallel35d_sweep(&kernel, &mut want, steps, Blocking35::new(tile, tile, dim_t), &team);

        let mut got = DoubleGrid::from_initial(init);
        let team = ThreadTeam::new(threads);
        try_parallel35d_sweep(
            &kernel,
            &mut got,
            steps,
            Blocking35::new(tile, tile, dim_t),
            &team,
            None,
            &Observer::disabled(),
        ).expect("observed executor runs");

        prop_assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    /// Tracing *enabled* also never changes results — recording is purely
    /// observational.
    #[test]
    fn enabled_tracing_is_purely_observational(
        n in 6usize..14,
        dim_t in 1usize..4,
        steps in 1usize..5,
        threads in 1usize..4,
        seed in 0usize..500,
    ) {
        let dim = Dim3::cube(n);
        let kernel = SevenPoint::<f32>::new(0.25, 0.125);
        let init = demo_grid(dim, seed);

        let mut want = DoubleGrid::from_initial(init.clone());
        reference_sweep(&kernel, &mut want, steps);

        let mut got = DoubleGrid::from_initial(init);
        let team = ThreadTeam::new(threads);
        let tracer = Tracer::enabled(threads);
        try_parallel35d_sweep(
            &kernel,
            &mut got,
            steps,
            Blocking35::new(n, n, dim_t),
            &team,
            None,
            &Observer::with_tracer(&tracer),
        ).expect("observed executor runs");

        prop_assert_eq!(got.src().as_slice(), want.src().as_slice());
        prop_assert!(tracer.snapshot().total_events() > 0);
    }
}
