//! Cross-crate integration: every stencil executor, every kernel shape,
//! bit-exact against the scalar reference — the repository's core
//! correctness contract.

use threefive::prelude::*;

fn initial<T: Real>(dim: Dim3) -> Grid3<T> {
    Grid3::from_fn(dim, |x, y, z| {
        T::from_f64((((x * 29 + y * 13 + z * 5) % 37) as f64) * 0.0625 - 1.0)
    })
}

fn run_all_f32(dim: Dim3, steps: usize, tile: usize, dim_t: usize) {
    let kernel = SevenPoint::<f32>::new(0.35, 0.105);
    let mut want = DoubleGrid::from_initial(initial::<f32>(dim));
    reference_sweep(&kernel, &mut want, steps);

    let mk = || DoubleGrid::from_initial(initial::<f32>(dim));
    let team = ThreadTeam::new(3);

    let mut g = mk();
    simd_sweep(&kernel, &mut g, steps);
    assert_eq!(g.src().as_slice(), want.src().as_slice(), "simd");

    let mut g = mk();
    blocked3d_sweep(&kernel, &mut g, steps, tile.min(16));
    assert_eq!(g.src().as_slice(), want.src().as_slice(), "3d");

    let mut g = mk();
    blocked25d_sweep(&kernel, &mut g, steps, tile, tile);
    assert_eq!(g.src().as_slice(), want.src().as_slice(), "2.5d");

    let mut g = mk();
    temporal_sweep(&kernel, &mut g, steps, dim_t);
    assert_eq!(g.src().as_slice(), want.src().as_slice(), "temporal");

    let mut g = mk();
    blocked4d_sweep(&kernel, &mut g, steps, tile.min(12), dim_t);
    assert_eq!(g.src().as_slice(), want.src().as_slice(), "4d");

    let mut g = mk();
    blocked35d_sweep(&kernel, &mut g, steps, Blocking35::new(tile, tile, dim_t));
    assert_eq!(g.src().as_slice(), want.src().as_slice(), "3.5d serial");

    let mut g = mk();
    parallel35d_sweep(
        &kernel,
        &mut g,
        steps,
        Blocking35::new(tile, tile, dim_t),
        &team,
    );
    assert_eq!(g.src().as_slice(), want.src().as_slice(), "3.5d parallel");
}

#[test]
fn full_ladder_small_cube() {
    run_all_f32(Dim3::cube(16), 4, 8, 2);
}

#[test]
fn full_ladder_anisotropic_grid() {
    run_all_f32(Dim3::new(23, 11, 17), 3, 7, 3);
}

#[test]
fn full_ladder_tile_larger_than_grid() {
    run_all_f32(Dim3::cube(12), 5, 64, 2);
}

#[test]
fn full_ladder_deep_temporal_blocking() {
    run_all_f32(Dim3::cube(20), 8, 10, 4);
}

#[test]
fn ladder_f64_27_point() {
    let dim = Dim3::cube(12);
    let steps = 3;
    let kernel = TwentySevenPoint::<f64>::smoothing();
    let mut want = DoubleGrid::from_initial(initial::<f64>(dim));
    reference_sweep(&kernel, &mut want, steps);

    let mut g = DoubleGrid::from_initial(initial::<f64>(dim));
    blocked35d_sweep(&kernel, &mut g, steps, Blocking35::new(6, 5, 2));
    assert_eq!(g.src().as_slice(), want.src().as_slice());

    let team = ThreadTeam::new(4);
    let mut g = DoubleGrid::from_initial(initial::<f64>(dim));
    parallel35d_sweep(&kernel, &mut g, steps, Blocking35::new(6, 5, 2), &team);
    assert_eq!(g.src().as_slice(), want.src().as_slice());
}

#[test]
fn ladder_radius_two_star() {
    let dim = Dim3::cube(18);
    let steps = 4;
    let kernel = GenericStar::<f32>::smoothing(2);
    let mut want = DoubleGrid::from_initial(initial::<f32>(dim));
    reference_sweep(&kernel, &mut want, steps);

    let mut g = DoubleGrid::from_initial(initial::<f32>(dim));
    blocked35d_sweep(&kernel, &mut g, steps, Blocking35::new(9, 8, 2));
    assert_eq!(g.src().as_slice(), want.src().as_slice(), "3.5d r=2");

    let team = ThreadTeam::new(2);
    let mut g = DoubleGrid::from_initial(initial::<f32>(dim));
    parallel35d_sweep(&kernel, &mut g, steps, Blocking35::new(9, 8, 2), &team);
    assert_eq!(g.src().as_slice(), want.src().as_slice(), "parallel r=2");
}

#[test]
fn planner_parameters_drive_executor_directly() {
    // End-to-end: plan from machine+kernel ratios, execute with the plan.
    let machine = core_i7();
    let traffic = seven_point_traffic();
    let plan = plan_35d(
        traffic.gamma(Precision::Sp),
        machine.big_gamma(Precision::Sp),
        machine.fast_storage_bytes,
        4,
        1,
    )
    .unwrap();
    let dim = Dim3::cube(24);
    let kernel = SevenPoint::<f32>::heat(0.125);
    let mut want = DoubleGrid::from_initial(initial::<f32>(dim));
    reference_sweep(&kernel, &mut want, plan.dim_t * 2);
    let mut g = DoubleGrid::from_initial(initial::<f32>(dim));
    let blocking = Blocking35::new(plan.dim_xy.min(dim.nx), plan.dim_xy.min(dim.ny), plan.dim_t);
    blocked35d_sweep(&kernel, &mut g, plan.dim_t * 2, blocking);
    assert_eq!(g.src().as_slice(), want.src().as_slice());
}

#[test]
fn dirichlet_boundary_is_immutable_through_deep_sweeps() {
    let dim = Dim3::cube(14);
    let init = initial::<f32>(dim);
    let mut g = DoubleGrid::from_initial(init.clone());
    let kernel = SevenPoint::<f32>::heat(0.1);
    blocked35d_sweep(&kernel, &mut g, 9, Blocking35::new(7, 7, 3));
    for (x, y, z) in dim.full_region().points() {
        if !dim.is_interior(x, y, z, 1) {
            assert_eq!(
                g.src().get(x, y, z),
                init.get(x, y, z),
                "boundary changed at ({x},{y},{z})"
            );
        }
    }
}
