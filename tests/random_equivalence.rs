//! Property-based cross-crate equivalence: random grids, tilings,
//! temporal factors, team sizes and kernels — the 3.5-D pipeline must
//! always equal the reference bit for bit.

use proptest::prelude::*;
use threefive::lbm::scenarios;
use threefive::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_stencil_pipeline_equivalence(
        nx in 5usize..20,
        ny in 5usize..20,
        nz in 5usize..16,
        tile_x in 2usize..24,
        tile_y in 2usize..24,
        dim_t in 1usize..5,
        steps in 1usize..7,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let dim = Dim3::new(nx, ny, nz);
        let kernel = SevenPoint::<f32>::new(0.3, 0.1);
        let init = Grid3::from_fn(dim, |x, y, z| {
            let h = x
                .wrapping_mul(0x9E37)
                .wrapping_add(y.wrapping_mul(0x79B9))
                .wrapping_add(z.wrapping_mul(0x85EB))
                .wrapping_add(seed as usize);
            ((h % 97) as f32) * 0.02 - 1.0
        });
        let mut want = DoubleGrid::from_initial(init.clone());
        reference_sweep(&kernel, &mut want, steps);

        let mut got = DoubleGrid::from_initial(init.clone());
        blocked35d_sweep(&kernel, &mut got, steps, Blocking35::new(tile_x, tile_y, dim_t));
        prop_assert_eq!(got.src().as_slice(), want.src().as_slice());

        let team = ThreadTeam::new(threads);
        let mut got = DoubleGrid::from_initial(init);
        parallel35d_sweep(&kernel, &mut got, steps, Blocking35::new(tile_x, tile_y, dim_t), &team);
        prop_assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    #[test]
    fn random_lbm_pipeline_equivalence(
        n in 6usize..13,
        tile in 3usize..14,
        dim_t in 1usize..5,
        steps in 1usize..6,
        lid in 0u8..2,
    ) {
        let dim = Dim3::cube(n);
        let build = || -> Lattice<f32> {
            if lid == 0 {
                scenarios::closed_box(dim, 1.25)
            } else {
                scenarios::lid_driven_cavity(dim, 1.25, 0.05)
            }
        };
        let mut want = build();
        lbm_naive_sweep(&mut want, steps, LbmMode::Simd, None);
        let mut got = build();
        lbm35d_sweep(&mut got, steps, LbmBlocking::new(tile, tile, dim_t), None);
        for q in 0..19 {
            prop_assert_eq!(want.src().comp(q), got.src().comp(q));
        }
    }

    /// The unified engine must stay bit-identical to the reference for
    /// higher-radius star stencils too: R = 2 and R = 3 exercise the
    /// deeper ring (`max(2R+2, 3R+1)` slots), wider halos (`R·dim_T`) and
    /// thicker Z-boundary bands, across non-divisible tiles and team
    /// sizes 1/2/4.
    #[test]
    fn random_higher_radius_star_equivalence(
        r in 2usize..4,
        nx in 9usize..18,
        ny in 9usize..18,
        nz in 9usize..15,
        tile_x in 4usize..13,
        tile_y in 4usize..13,
        dim_t in 1usize..4,
        steps in 1usize..5,
        team_pick in 0usize..3,
        seed in 0u64..1000,
    ) {
        let dim = Dim3::new(nx, ny, nz);
        let kernel = GenericStar::<f32>::smoothing(r);
        let init = Grid3::from_fn(dim, |x, y, z| {
            let h = x
                .wrapping_mul(0x9E37)
                .wrapping_add(y.wrapping_mul(0x79B9))
                .wrapping_add(z.wrapping_mul(0x85EB))
                .wrapping_add(seed as usize);
            ((h % 89) as f32) * 0.02 - 0.9
        });
        let mut want = DoubleGrid::from_initial(init.clone());
        reference_sweep(&kernel, &mut want, steps);

        let b = Blocking35::new(tile_x, tile_y, dim_t);
        let mut got = DoubleGrid::from_initial(init.clone());
        blocked35d_sweep(&kernel, &mut got, steps, b);
        prop_assert_eq!(got.src().as_slice(), want.src().as_slice());

        let threads = [1usize, 2, 4][team_pick];
        let team = ThreadTeam::new(threads);
        let mut got = DoubleGrid::from_initial(init);
        try_parallel35d_sweep(&kernel, &mut got, steps, b, &team, None, &Observer::disabled())
            .expect("engine sweep runs");
        prop_assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    #[test]
    fn random_4d_blocking_equivalence(
        n in 5usize..14,
        block in 2usize..10,
        dim_t in 1usize..4,
        steps in 1usize..6,
    ) {
        let dim = Dim3::cube(n);
        let kernel = SevenPoint::<f64>::new(0.25, 0.125);
        let init = Grid3::from_fn(dim, |x, y, z| ((x * 7 + y * 11 + z * 13) % 23) as f64 * 0.1);
        let mut want = DoubleGrid::from_initial(init.clone());
        reference_sweep(&kernel, &mut want, steps);
        let mut got = DoubleGrid::from_initial(init);
        blocked4d_sweep(&kernel, &mut got, steps, block, dim_t);
        prop_assert_eq!(got.src().as_slice(), want.src().as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Periodic pipeline vs modular-indexing reference across random
    /// shapes, tilings and temporal factors.
    #[test]
    fn random_periodic_pipeline_equivalence(
        nx in 4usize..14,
        ny in 4usize..14,
        nz in 4usize..12,
        tile in 2usize..16,
        dim_t in 1usize..4,
        steps in 1usize..5,
        threads in 1usize..4,
    ) {
        let dim = Dim3::new(nx, ny, nz);
        let kernel = SevenPoint::<f32>::new(0.3, 0.1);
        let init = Grid3::from_fn(dim, |x, y, z| {
            ((x * 7 + y * 13 + z * 31) % 19) as f32 * 0.11 - 1.0
        });
        let mut want = DoubleGrid::from_initial(init.clone());
        reference_sweep_periodic(&kernel, &mut want, steps);
        let team = ThreadTeam::new(threads);
        let mut got = DoubleGrid::from_initial(init);
        periodic35d_sweep(
            &kernel,
            &mut got,
            steps,
            Blocking35::new(tile, tile, dim_t),
            Some(&team),
        );
        prop_assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    /// The tile-queue scheduling matches the reference for random inputs.
    #[test]
    fn random_tile_parallel_equivalence(
        n in 5usize..15,
        tile in 2usize..12,
        dim_t in 1usize..4,
        steps in 1usize..5,
        threads in 1usize..5,
    ) {
        let dim = Dim3::cube(n);
        let kernel = SevenPoint::<f64>::new(0.25, 0.12);
        let init = Grid3::from_fn(dim, |x, y, z| ((x * 3 + y * 5 + z * 7) % 11) as f64 * 0.2);
        let mut want = DoubleGrid::from_initial(init.clone());
        reference_sweep(&kernel, &mut want, steps);
        let team = ThreadTeam::new(threads);
        let mut got = DoubleGrid::from_initial(init);
        tile_parallel35d_sweep(&kernel, &mut got, steps, Blocking35::new(tile, tile, dim_t), &team);
        prop_assert_eq!(got.src().as_slice(), want.src().as_slice());
    }
}
