//! Cross-crate LBM integration: executor equivalence on realistic
//! scenarios and physics sanity at the system level.

use threefive::lbm::scenarios;
use threefive::prelude::*;

fn assert_equal<T: Real>(a: &Lattice<T>, b: &Lattice<T>, what: &str) {
    for q in 0..19 {
        assert_eq!(a.src().comp(q), b.src().comp(q), "{what} comp {q}");
    }
}

#[test]
fn all_lbm_executors_agree_on_cavity_flow() {
    let dim = Dim3::new(20, 14, 12);
    let steps = 6;
    let build = || scenarios::lid_driven_cavity::<f32>(dim, 1.15, 0.06);

    let mut want = build();
    lbm_naive_sweep(&mut want, steps, LbmMode::Scalar, None);

    let mut simd = build();
    lbm_naive_sweep(&mut simd, steps, LbmMode::Simd, None);
    assert_equal(&want, &simd, "simd");

    let team = ThreadTeam::new(3);
    let mut par = build();
    lbm_naive_sweep(&mut par, steps, LbmMode::Simd, Some(&team));
    assert_equal(&want, &par, "parallel naive");

    let mut temporal = build();
    lbm_temporal_sweep(&mut temporal, steps, 3, None);
    assert_equal(&want, &temporal, "temporal");

    let mut blocked = build();
    lbm35d_sweep(&mut blocked, steps, LbmBlocking::new(8, 6, 3), Some(&team));
    assert_equal(&want, &blocked, "3.5d parallel");
}

#[test]
fn paper_plan_drives_lbm_executor() {
    // LBM SP plan (dimT = 3, tile 64) applied end to end on a smaller box.
    let plan = plan_35d(
        0.85,
        core_i7().big_gamma(Precision::Sp),
        core_i7().fast_storage_bytes,
        lbm_traffic().elem_bytes(Precision::Sp),
        1,
    )
    .unwrap();
    assert_eq!((plan.dim_t, plan.dim_xy), (3, 64));
    let dim = Dim3::cube(16);
    let mut want = scenarios::closed_box::<f32>(dim, 1.3);
    let mut got = scenarios::closed_box::<f32>(dim, 1.3);
    lbm_naive_sweep(&mut want, 6, LbmMode::Simd, None);
    lbm35d_sweep(
        &mut got,
        6,
        LbmBlocking::new(plan.dim_xy.min(16), plan.dim_xy.min(16), plan.dim_t),
        None,
    );
    assert_equal(&want, &got, "planned");
}

#[test]
fn momentum_is_injected_only_by_the_lid() {
    let dim = Dim3::cube(14);
    let mut quiescent = scenarios::closed_box::<f64>(dim, 1.2);
    let mut driven = scenarios::lid_driven_cavity::<f64>(dim, 1.2, 0.1);
    lbm35d_sweep(&mut quiescent, 30, LbmBlocking::new(7, 7, 3), None);
    lbm35d_sweep(&mut driven, 30, LbmBlocking::new(7, 7, 3), None);

    let momentum = |lat: &Lattice<f64>| {
        let mut m = 0.0;
        for z in 1..dim.nz - 1 {
            for y in 1..dim.ny - 1 {
                for x in 1..dim.nx - 1 {
                    if lat.flags().get(x, y, z) == CellKind::Fluid {
                        let mac = lat.macroscopic(x, y, z);
                        m += mac.rho * mac.u[0];
                    }
                }
            }
        }
        m
    };
    assert!(
        momentum(&quiescent).abs() < 1e-10,
        "closed box stays at rest"
    );
    assert!(momentum(&driven) > 1e-3, "the lid must drag fluid along +x");
}

#[test]
fn obstacle_channel_blocked_equals_naive_over_long_run() {
    let dim = Dim3::new(30, 14, 12);
    let mut want = scenarios::channel_with_sphere::<f64>(dim, 1.05, 0.04, 3.0);
    let mut got = scenarios::channel_with_sphere::<f64>(dim, 1.05, 0.04, 3.0);
    lbm_naive_sweep(&mut want, 25, LbmMode::Simd, None);
    lbm35d_sweep(&mut got, 25, LbmBlocking::new(10, 7, 4), None);
    assert_equal(&want, &got, "channel long run");
}

#[test]
fn densities_stay_physical_under_blocking() {
    let dim = Dim3::cube(12);
    let mut lat = scenarios::lid_driven_cavity::<f32>(dim, 1.4, 0.08);
    lbm35d_sweep(&mut lat, 40, LbmBlocking::new(6, 6, 2), None);
    for z in 1..dim.nz - 1 {
        for y in 1..dim.ny - 1 {
            for x in 1..dim.nx - 1 {
                if lat.flags().get(x, y, z) != CellKind::Fluid {
                    continue;
                }
                let m = lat.macroscopic(x, y, z);
                assert!(
                    m.rho > 0.5 && m.rho < 2.0,
                    "density blew up at ({x},{y},{z}): {}",
                    m.rho
                );
                let speed = (m.u[0] * m.u[0] + m.u[1] * m.u[1] + m.u[2] * m.u[2]).sqrt();
                assert!(speed < 0.3, "speed blew up at ({x},{y},{z}): {speed}");
            }
        }
    }
}
